package core

import "testing"

// harness wires a client against fake ports with a scripted "server"
// that runs inside the actor hooks.
type harness struct {
	srvQ *fakePort // server receive queue (client enqueues here)
	rcvQ *fakePort // client reply queue
	a    *fakeActor
	cl   *Client
}

func newHarness(alg Algorithm, maxSpin int) *harness {
	h := &harness{
		srvQ: newFakePort(0, 16),
		rcvQ: newFakePort(1, 16),
		a:    newFakeActor(2),
	}
	h.cl = &Client{
		ID: 3, Alg: alg, MaxSpin: maxSpin,
		Srv: h.srvQ, Rcv: h.rcvQ, A: h.a,
	}
	return h
}

// echoOnce makes the scripted server consume the pending request and
// enqueue the echo reply.
func (h *harness) echoOnce() {
	if m, ok := h.srvQ.TryDequeue(); ok {
		h.rcvQ.msgs = append(h.rcvQ.msgs, m)
	}
}

func TestClientSendStampsReplyChannel(t *testing.T) {
	for _, alg := range Algorithms() {
		h := newHarness(alg, 4)
		h.srvQ.awake = true // server spinning: no V needed
		h.a.onBusy = h.echoOnce
		h.a.onYield = h.echoOnce
		h.a.onP = func(id SemID) { h.echoOnce(); h.a.sems[id]++ }
		ans := h.cl.Send(Msg{Op: OpEcho, Seq: 11, Val: 2.5})
		if ans.Client != 3 {
			t.Errorf("%s: reply channel = %d, want 3 (stamped by Send)", alg, ans.Client)
		}
		if ans.Seq != 11 || ans.Val != 2.5 {
			t.Errorf("%s: reply = %+v", alg, ans)
		}
	}
}

func TestClientBSSNeverUsesSemaphores(t *testing.T) {
	h := newHarness(BSS, 0)
	h.a.onBusy = h.echoOnce
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.sems[0] != 0 || h.a.sems[1] != 0 || h.a.blockedAt != 0 {
		t.Fatal("BSS must not touch semaphores")
	}
	if h.srvQ.tasCalls != 0 || h.rcvQ.tasCalls != 0 {
		t.Fatal("BSS must not touch awake flags")
	}
}

func TestClientBSWWakesSleepingServer(t *testing.T) {
	h := newHarness(BSW, 0)
	h.srvQ.awake = false // server is asleep
	// Reply preloaded so the client need not block.
	h.rcvQ.msgs = append(h.rcvQ.msgs, Msg{Val: 1})
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.sems[0] != 1 {
		t.Fatalf("server sem = %d, want 1 (client must V the sleeping server)", h.a.sems[0])
	}
	if !h.srvQ.awake {
		t.Fatal("client's TAS must set the server awake flag")
	}
}

func TestClientBSWSkipsWakeWhenServerAwake(t *testing.T) {
	h := newHarness(BSW, 0)
	h.srvQ.awake = true
	h.rcvQ.msgs = append(h.rcvQ.msgs, Msg{Val: 1})
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.sems[0] != 0 {
		t.Fatalf("server sem = %d, want 0 (awake server needs no V)", h.a.sems[0])
	}
}

func TestClientBSWYBusyWaitsAfterWake(t *testing.T) {
	h := newHarness(BSWY, 0)
	h.srvQ.awake = false
	h.a.onBusy = h.echoOnce // the busy_wait "lets the server run"
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.busyWaits == 0 {
		t.Fatal("BSWY must busy_wait after waking the server")
	}
	if h.a.blockedAt != 0 {
		t.Fatal("hand-off hint should have avoided the block")
	}
}

func TestClientBSLSSpinsBeforeBlocking(t *testing.T) {
	h := newHarness(BSLS, 8)
	h.srvQ.awake = true
	polls := 0
	h.a.onBusy = func() {
		polls++
		if polls == 3 {
			h.echoOnce()
		}
	}
	h.cl.Send(Msg{Op: OpEcho})
	if polls != 3 {
		t.Fatalf("polls = %d, want 3 (reply after third poll)", polls)
	}
	if h.a.blockedAt != 0 {
		t.Fatal("successful spin must not block")
	}
}

func TestClientBSLSFallsThroughToBlock(t *testing.T) {
	h := newHarness(BSLS, 2)
	h.srvQ.awake = true
	h.a.onP = func(id SemID) { h.echoOnce(); h.a.sems[id]++ }
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.blockedAt != 1 {
		t.Fatalf("blockedAt = %d, want 1 (MAX_SPIN exhausted)", h.a.blockedAt)
	}
	if h.a.polls < 2 {
		t.Fatalf("polls = %d, want >= MAX_SPIN", h.a.polls)
	}
}

func TestClientDefaultMaxSpin(t *testing.T) {
	h := newHarness(BSLS, 0) // zero -> DefaultMaxSpin
	h.srvQ.awake = true
	h.a.onP = func(id SemID) { h.echoOnce(); h.a.sems[id]++ }
	h.cl.Send(Msg{Op: OpEcho})
	if h.a.polls != DefaultMaxSpin {
		t.Fatalf("polls = %d, want DefaultMaxSpin (%d)", h.a.polls, DefaultMaxSpin)
	}
}

func TestClientHandoffTargetsServer(t *testing.T) {
	h := newHarness(BSWY, 0)
	h.cl.UseHandoff = true
	h.cl.HandoffTarget = 42
	h.srvQ.awake = false
	// Handoff hook: server runs.
	done := false
	h.a.onP = func(id SemID) { h.echoOnce(); h.a.sems[id]++ }
	h.cl.Send(Msg{Op: OpEcho})
	_ = done
	if len(h.a.handoffs) == 0 {
		t.Fatal("UseHandoff must issue handoff calls")
	}
	for _, target := range h.a.handoffs {
		if target != 42 {
			t.Fatalf("handoff target = %d, want 42", target)
		}
	}
}

func TestClientAsyncSendDoesNotWait(t *testing.T) {
	h := newHarness(BSW, 0)
	h.srvQ.awake = false
	h.cl.SendAsync(Msg{Op: OpWork, Seq: 1})
	h.cl.SendAsync(Msg{Op: OpWork, Seq: 2})
	if len(h.srvQ.msgs) != 2 {
		t.Fatalf("queued = %d, want 2", len(h.srvQ.msgs))
	}
	// Only the first async send finds the flag clear and Vs.
	if h.a.sems[0] != 1 {
		t.Fatalf("server sem = %d, want 1", h.a.sems[0])
	}
	// Echo both and collect.
	h.echoOnce()
	h.echoOnce()
	r1 := h.cl.RecvReply()
	r2 := h.cl.RecvReply()
	if r1.Seq != 1 || r2.Seq != 2 {
		t.Fatalf("replies out of order: %d, %d", r1.Seq, r2.Seq)
	}
}

func TestClientAsyncBSSDoesNotWake(t *testing.T) {
	h := newHarness(BSS, 0)
	h.cl.SendAsync(Msg{Op: OpWork})
	if h.a.sems[0] != 0 {
		t.Fatal("BSS async send must not V")
	}
}

func TestAlgorithmNames(t *testing.T) {
	for _, alg := range Algorithms() {
		got, err := AlgorithmByName(alg.String())
		if err != nil || got != alg {
			t.Errorf("round trip %s: %v, %v", alg, got, err)
		}
	}
	if _, err := AlgorithmByName("nope"); err == nil {
		t.Error("bad name accepted")
	}
	if s := Algorithm(99).String(); s == "" {
		t.Error("unknown algorithm must stringify")
	}
}
