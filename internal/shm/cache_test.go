package shm

import (
	"runtime"
	"sync"
	"testing"
)

func mustPool(t *testing.T, n int) *Pool {
	t.Helper()
	p, err := NewPoolSize(n)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAllocNFreeN(t *testing.T) {
	p := mustPool(t, 16)
	dst := make([]Ref, 6)
	if n := p.AllocN(dst); n != 6 {
		t.Fatalf("AllocN = %d, want 6", n)
	}
	if got := p.FreeCount(); got != 10 {
		t.Fatalf("FreeCount after AllocN = %d, want 10", got)
	}
	seen := map[Ref]bool{}
	for _, r := range dst {
		if r >= 16 || seen[r] {
			t.Fatalf("bad or duplicate ref %d in %v", r, dst)
		}
		seen[r] = true
	}
	p.FreeN(dst)
	if got := p.FreeCount(); got != 16 {
		t.Fatalf("FreeCount after FreeN = %d, want 16", got)
	}
	// The whole pool must still be allocatable ref-by-ref: no node was
	// lost or duplicated by the batched splice.
	got := map[Ref]bool{}
	for i := 0; i < 16; i++ {
		r, ok := p.Alloc()
		if !ok || got[r] {
			t.Fatalf("alloc %d: ok=%v dup=%v", i, ok, got[r])
		}
		got[r] = true
	}
	if _, ok := p.Alloc(); ok {
		t.Fatal("alloc on exhausted pool succeeded")
	}
}

func TestAllocNPartialAndExhausted(t *testing.T) {
	p := mustPool(t, 4)
	dst := make([]Ref, 8)
	if n := p.AllocN(dst); n != 4 {
		t.Fatalf("partial AllocN = %d, want 4", n)
	}
	if n := p.AllocN(dst); n != 0 {
		t.Fatalf("AllocN on exhausted pool = %d, want 0", n)
	}
	if n := p.AllocN(nil); n != 0 {
		t.Fatal("AllocN(nil) must be a no-op")
	}
	p.FreeN(dst[:4])
	if got := p.FreeCount(); got != 4 {
		t.Fatalf("FreeCount = %d, want 4", got)
	}
}

// TestPoolCacheExactExhaustion: a single producer routing allocations
// through a cache must get exactly as many successful Allocs as the
// pool has nodes — batching must not make single-producer flow control
// conservative (partial refills take whatever is left).
func TestPoolCacheExactExhaustion(t *testing.T) {
	const size = 10
	p := mustPool(t, size)
	c := p.NewCache(4)
	for i := 0; i < size; i++ {
		if _, ok, _ := c.Alloc(); !ok {
			t.Fatalf("alloc %d failed with pool+cache holding nodes", i)
		}
	}
	if _, ok, _ := c.Alloc(); ok {
		t.Fatal("alloc succeeded past pool size")
	}
	if c.Refills < 3 { // 4+4+2
		t.Fatalf("Refills = %d, want >= 3", c.Refills)
	}
}

func TestPoolCacheBatchClampAndSpill(t *testing.T) {
	p := mustPool(t, 64)
	if b := p.NewCache(0).Batch(); b != 2 {
		t.Fatalf("batch clamp: got %d, want 2", b)
	}
	c := p.NewCache(4)
	refs := make([]Ref, 0, 16)
	for i := 0; i < 8; i++ {
		r, ok, _ := c.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		refs = append(refs, r)
	}
	// Freeing 2*batch refs must spill the cold half back to the pool.
	before := p.FreeCount()
	for _, r := range refs {
		c.Free(r)
	}
	if c.Spills == 0 {
		t.Fatal("no spill after freeing 2*batch refs")
	}
	if c.Len() > 2*c.Batch() {
		t.Fatalf("cache holds %d refs, cap is %d", c.Len(), 2*c.Batch())
	}
	if p.FreeCount() <= before {
		t.Fatal("spill did not return refs to the pool")
	}
}

// TestPoolCacheDrainRestoresFlowControl: Drain must return every parked
// ref so the pool's free count — the protocols' queue-full signal — is
// fully restored when a producer retires.
func TestPoolCacheDrainRestoresFlowControl(t *testing.T) {
	const size = 32
	p := mustPool(t, size)
	c := p.NewCache(8)
	live := make([]Ref, 0, 8)
	for i := 0; i < 8; i++ {
		r, ok, _ := c.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		live = append(live, r)
	}
	for _, r := range live {
		c.Free(r)
	}
	c.Drain()
	if c.Len() != 0 {
		t.Fatalf("cache still holds %d refs after Drain", c.Len())
	}
	if got := p.FreeCount(); got != size {
		t.Fatalf("FreeCount after Drain = %d, want %d", got, size)
	}
	if c.Drain() != 0 {
		t.Fatal("second Drain returned refs")
	}
	// The cache stays usable after a drain.
	if _, ok, _ := c.Alloc(); !ok {
		t.Fatal("alloc after Drain failed")
	}
}

// TestPoolBatchedConcurrent hammers AllocN/FreeN from several goroutines
// (each through its own cache, per the single-owner contract) against a
// shared pool. Under -race this certifies the tagged-CAS walk; the
// final FreeCount check certifies no ref is lost or duplicated.
func TestPoolBatchedConcurrent(t *testing.T) {
	const (
		workers = 4
		rounds  = 5_000
		size    = 64
	)
	p := mustPool(t, size)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := p.NewCache(4)
			held := make([]Ref, 0, 8)
			for i := 0; i < rounds; i++ {
				if r, ok, _ := c.Alloc(); ok {
					held = append(held, r)
				} else {
					runtime.Gosched()
				}
				if len(held) >= 8 || (len(held) > 0 && i%3 == 0) {
					c.Free(held[len(held)-1])
					held = held[:len(held)-1]
				}
			}
			for _, r := range held {
				c.Free(r)
			}
			c.Drain()
		}()
	}
	wg.Wait()
	if got := p.FreeCount(); got != size {
		t.Fatalf("FreeCount after drain = %d, want %d (refs lost or duplicated)", got, size)
	}
	// Every node must still be individually allocatable.
	seen := map[Ref]bool{}
	for i := 0; i < size; i++ {
		r, ok := p.Alloc()
		if !ok || seen[r] {
			t.Fatalf("alloc %d: ok=%v dup=%v", i, ok, seen[r])
		}
		seen[r] = true
	}
}
