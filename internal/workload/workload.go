// Package workload implements the paper's client/server micro-benchmark
// (Section 2.2): up to n clients connect to a single-threaded echo
// server, barrier, and then barrage it with requests over the user-level
// IPC interface (or over System V message queues for the baseline).
// Server throughput is computed from the first message request to the
// last client disconnect, excluding connect-time processing.
package workload

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
)

// Transport selects the IPC mechanism under test.
type Transport int

const (
	// TransportULIPC is user-level IPC over shared-memory queues using
	// one of the paper's protocols.
	TransportULIPC Transport = iota
	// TransportSysV is the kernel-mediated System V message queue
	// baseline.
	TransportSysV
)

func (t Transport) String() string {
	if t == TransportSysV {
		return "SYSV"
	}
	return "ULIPC"
}

// Arch selects the server architecture (Section 2.1).
type Arch int

const (
	// ArchSharedQueue is the paper's evaluation architecture: one
	// single-threaded server with a shared receive queue and a reply
	// queue per client.
	ArchSharedQueue Arch = iota
	// ArchThreadPerClient is the alternative Section 2.1 sketches: a
	// server thread per client with two queues per client forming a
	// full-duplex virtual connection.
	ArchThreadPerClient
)

func (a Arch) String() string {
	if a == ArchThreadPerClient {
		return "thread-per-client"
	}
	return "shared-queue"
}

// Config describes one benchmark run.
type Config struct {
	Machine   *machine.Model
	Policy    string // scheduler policy name (sched package)
	Transport Transport
	Arch      Arch           // server architecture (shared queue default)
	Alg       core.Algorithm // protocol when Transport == TransportULIPC
	Clients   int
	Msgs      int // requests per client
	MaxSpin   int // BSLS MAX_SPIN
	QueueCap  int // shared-queue capacity (free-pool size); default 64

	// ServerWorkers, when > 1, runs the server as a pool of that many
	// worker processes all receiving from the shared queue (the
	// "multiple server threads" of Section 2.1, using the
	// counted-waiters discipline model-checked in internal/protomodel).
	ServerWorkers int

	// Background spawns CPU-bound competitor processes — the
	// multiprogrammed environment of the paper's motivation (Section 1:
	// blocking semantics exist "to obtain the best overall system
	// throughput, particularly in multi-programmed environments").
	Background int

	ServerWork  sim.Time // per-request server-side processing (0 = pure echo)
	ClientThink sim.Time // client compute time between requests (0 = barrage)
	Handoff     bool     // use the handoff(pid) extension for scheduling hints
	Throttle    int      // server wake throttle (0 = unlimited)

	ServerPrio int
	ClientPrio int

	MaxTime sim.Time // simulation abort threshold; defaulted if zero

	// Trace, when non-nil, receives the kernel's scheduler events
	// (switches, blocks, wake-ups) during the run.
	Trace sim.TraceFn
}

func (c *Config) queueCap() int {
	if c.QueueCap <= 0 {
		return 64
	}
	return c.QueueCap
}

// Result summarises a run.
type Result struct {
	Label      string
	Throughput float64 // server throughput, messages per millisecond
	RTTMicros  float64 // mean round-trip time per request, microseconds
	Duration   sim.Time
	TotalMsgs  int64

	Server     metrics.Snapshot
	Clients    metrics.Snapshot // aggregated over all clients
	Background metrics.Snapshot // aggregated over background processes
	All        metrics.Snapshot

	// Phase holds the per-phase latency histograms for the cell's
	// protocol when the run was observed (live runs with
	// LiveConfig.Observe); nil otherwise.
	Phase *obs.ProtoSnapshot

	// FlightDump holds the flight-recorder contents captured when a
	// watchdog deadline tripped (live runs with LiveConfig.Observe and a
	// RecorderCap): the last IPC events before the stall, ready to embed
	// in a report.
	FlightDump string

	// Payload axis (live cells with LiveConfig.PaySize > 0): bytes per
	// message, whether the copy-in/copy-out baseline ran instead of the
	// lease transfer, and the achieved payload bandwidth (request +
	// response bytes over the measured interval).
	PaySize     int
	PayCopy     bool
	BytesPerSec float64
}

// BackgroundCPUShare returns the fraction of the measured interval the
// background processes spent on CPU (can exceed 1 on a multiprocessor).
func (r Result) BackgroundCPUShare() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Background.CPUTimeNS) / float64(r.Duration)
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %.2f msg/ms (rtt %.1f us, %d msgs in %.2f ms)",
		r.Label, r.Throughput, r.RTTMicros, r.TotalMsgs, float64(r.Duration)/1e6)
}

// RunSim executes the workload on the discrete-event kernel and returns
// the measured result.
func RunSim(cfg Config) (Result, error) {
	if cfg.Machine == nil {
		return Result{}, fmt.Errorf("workload: nil machine")
	}
	if cfg.Clients < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 client")
	}
	if cfg.Msgs < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 message")
	}
	policy, err := sched.New(cfg.Policy)
	if err != nil {
		return Result{}, err
	}
	maxTime := cfg.MaxTime
	if maxTime <= 0 {
		// Generous ceiling: a full second of virtual time per message
		// plus slack for sleep(1) queue-full naps.
		maxTime = sim.Time(cfg.Clients*cfg.Msgs+60) * 2 * sim.Millisecond * 1000
	}
	ms := metrics.NewSet()
	k, err := sim.New(sim.Config{Machine: cfg.Machine, Sched: policy, MaxTime: maxTime, Metrics: ms, Trace: cfg.Trace})
	if err != nil {
		return Result{}, err
	}

	if cfg.Transport == TransportSysV {
		return runSimSysV(k, cfg, ms)
	}
	if cfg.Arch == ArchThreadPerClient {
		return runSimDuplex(k, cfg, ms)
	}
	if cfg.ServerWorkers > 1 {
		return runSimPool(k, cfg, ms)
	}
	return runSimULIPC(k, cfg, ms)
}

// spawnBackground adds the multiprogramming competitors: CPU-bound
// processes that run in 100us slices until the IPC measurement is over.
// Their accumulated CPU time is the "background progress" the blocking
// protocols are supposed to preserve.
func spawnBackground(k *sim.Kernel, cfg Config, stop *atomic.Bool) {
	const slice = 100 * sim.Microsecond
	for i := 0; i < cfg.Background; i++ {
		k.Spawn(fmt.Sprintf("bg%d", i), cfg.ClientPrio, func(p *sim.Proc) {
			for !stop.Load() {
				p.Step(slice)
			}
		})
	}
}

// recorder collects the timing anchors of the paper's methodology.
type recorder struct {
	firstReq sim.Time // earliest first-request timestamp over all clients
	lastDone sim.Time // server time when the last client disconnected
	started  bool
	errs     []string
}

func (r *recorder) noteStart(t sim.Time) {
	if !r.started || t < r.firstReq {
		r.firstReq = t
		r.started = true
	}
}

func (r *recorder) noteErr(format string, args ...any) {
	if len(r.errs) < 8 {
		r.errs = append(r.errs, fmt.Sprintf(format, args...))
	}
}

func buildResult(cfg Config, rec *recorder, ms *metrics.Set, label string) (Result, error) {
	if len(rec.errs) > 0 {
		return Result{}, fmt.Errorf("workload: validation failed: %v", rec.errs)
	}
	dur := rec.lastDone - rec.firstReq
	if dur <= 0 {
		return Result{}, fmt.Errorf("workload: non-positive measured duration %d", dur)
	}
	total := int64(cfg.Clients * cfg.Msgs)
	res := Result{
		Label:      label,
		Throughput: float64(total) / (float64(dur) / 1e6),
		RTTMicros:  float64(dur) / 1e3 / float64(cfg.Msgs),
		Duration:   dur,
		TotalMsgs:  total,
	}
	if s, ok := ms.Find("server"); ok {
		res.Server = s
	}
	res.Clients = ms.ByPrefix("client")
	res.Background = ms.ByPrefix("bg")
	res.All = ms.Total()
	return res, nil
}

// opForRun returns the request opcode for the configured workload.
func opForRun(cfg Config) int32 {
	if cfg.ServerWork > 0 {
		return core.OpWork
	}
	return core.OpEcho
}
