package workload

import (
	"fmt"
	"sync"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/livebind"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
)

// LiveConfig describes a live (real goroutine) benchmark run.
type LiveConfig struct {
	Alg       core.Algorithm
	Clients   int
	Msgs      int
	MaxSpin   int
	QueueCap  int
	QueueKind queue.Kind
	SpinIters int // >0: multiprocessor busy_wait flavour
	Throttle  int

	// ReplyKind selects the reply-queue implementation. Unlike the
	// library default (SPSC), a nil ReplyKind here follows QueueKind, so
	// experiment sweeps over queue kinds (ablation A2) keep comparing
	// the same implementation on both legs of the round trip. Point it
	// at queue.KindSPSC to measure the reply fast path.
	ReplyKind *queue.Kind

	// AllocBatch enables producer-side allocation batching (see
	// livebind.Options.AllocBatch).
	AllocBatch int

	// SleepScale compresses the queue-full sleep(1) so tests and benches
	// don't stall for wall-clock seconds; defaults to 1ms per "second".
	SleepScale time.Duration
}

// RunLive executes the client/server workload on the live runtime and
// returns wall-clock results.
func RunLive(cfg LiveConfig) (Result, error) {
	if cfg.Clients < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 client")
	}
	if cfg.Msgs < 1 {
		return Result{}, fmt.Errorf("workload: need at least 1 message")
	}
	if cfg.SleepScale == 0 {
		cfg.SleepScale = time.Millisecond
	}
	replyKind := cfg.QueueKind
	if cfg.ReplyKind != nil {
		replyKind = *cfg.ReplyKind
	}
	ms := metrics.NewSet()
	sys, err := livebind.NewSystem(livebind.Options{
		Alg:        cfg.Alg,
		MaxSpin:    cfg.MaxSpin,
		Clients:    cfg.Clients,
		QueueCap:   cfg.QueueCap,
		QueueKind:  cfg.QueueKind,
		ReplyKind:  &replyKind,
		AllocBatch: cfg.AllocBatch,
		SpinIters:  cfg.SpinIters,
		Throttle:   cfg.Throttle,
		SleepScale: cfg.SleepScale,
		Metrics:    ms,
	})
	if err != nil {
		return Result{}, err
	}

	var (
		startMu  sync.Mutex
		started  bool
		start    time.Time
		errsMu   sync.Mutex
		errs     []string
		serveEnd time.Time
	)
	noteStart := func() {
		startMu.Lock()
		if !started {
			start = time.Now()
			started = true
		}
		startMu.Unlock()
	}
	noteErr := func(format string, args ...any) {
		errsMu.Lock()
		if len(errs) < 8 {
			errs = append(errs, fmt.Sprintf(format, args...))
		}
		errsMu.Unlock()
	}

	srv := sys.Server()
	serverDone := make(chan int64, 1)
	go func() {
		served := srv.Serve(nil)
		serveEnd = time.Now()
		serverDone <- served
	}()

	var barrier sync.WaitGroup
	barrier.Add(cfg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		cl, err := sys.Client(i)
		if err != nil {
			return Result{}, err
		}
		wg.Add(1)
		go func(i int, cl *core.Client) {
			defer wg.Done()
			if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
				noteErr("client%d: bad connect reply %+v", i, ans)
			}
			barrier.Done()
			barrier.Wait()
			noteStart()
			for j := 0; j < cfg.Msgs; j++ {
				ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
			livebind.DrainPort(cl.Srv)
		}(i, cl)
	}
	wg.Wait()
	served := <-serverDone
	for _, p := range srv.Replies {
		livebind.DrainPort(p)
	}

	if len(errs) > 0 {
		return Result{}, fmt.Errorf("workload: live validation failed: %v", errs)
	}
	total := int64(cfg.Clients * cfg.Msgs)
	if served != total {
		return Result{}, fmt.Errorf("workload: server served %d, want %d", served, total)
	}
	dur := serveEnd.Sub(start)
	if dur <= 0 {
		dur = time.Nanosecond
	}
	res := Result{
		Label:      fmt.Sprintf("live/%s/%dc", cfg.Alg, cfg.Clients),
		Throughput: float64(total) / (float64(dur.Nanoseconds()) / 1e6),
		RTTMicros:  float64(dur.Nanoseconds()) / 1e3 / float64(cfg.Msgs),
		Duration:   dur.Nanoseconds(),
		TotalMsgs:  total,
	}
	if s, ok := ms.Find("server"); ok {
		res.Server = s
	}
	res.Clients = ms.ByPrefix("client")
	res.All = ms.Total()
	return res, nil
}
