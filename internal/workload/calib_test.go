package workload

// Calibration probes: these tests print the figure-level curves so the
// machine-model parameters can be checked against the paper's anchors.
// They only log; shape assertions live in the experiment package tests.

import (
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/machine"
)

func logCurve(t *testing.T, name string, cfg Config, clients []int) []float64 {
	t.Helper()
	out := make([]float64, 0, len(clients))
	for _, n := range clients {
		c := cfg
		c.Clients = n
		res, err := RunSim(c)
		if err != nil {
			t.Fatalf("%s n=%d: %v", name, n, err)
		}
		out = append(out, res.Throughput)
	}
	t.Logf("%-28s %v -> %s", name, clients, fmtCurve(out))
	return out
}

func fmtCurve(v []float64) string {
	s := ""
	for _, x := range v {
		s += " " + trim(x)
	}
	return s
}

func trim(x float64) string {
	return string([]byte(fmtFloat(x)))
}

func fmtFloat(x float64) string {
	// two decimals without fmt verbs gymnastics
	i := int64(x * 100)
	whole := i / 100
	frac := i % 100
	if frac < 0 {
		frac = -frac
	}
	digits := "0123456789"
	return itoa(whole) + "." + string(digits[frac/10]) + string(digits[frac%10])
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func TestCalibrationCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	clients := []int{1, 2, 3, 4, 5, 6}
	msgs := 1000

	sgi := machine.SGIIndy()
	ibm := machine.IBMP4()

	logCurve(t, "fig2a SGI BSS", Config{Machine: sgi, Alg: core.BSS, Msgs: msgs}, clients)
	logCurve(t, "fig2a SGI SYSV", Config{Machine: sgi, Transport: TransportSysV, Msgs: msgs}, clients)
	logCurve(t, "fig2b IBM BSS", Config{Machine: ibm, Alg: core.BSS, Msgs: msgs}, clients)
	logCurve(t, "fig2b IBM SYSV", Config{Machine: ibm, Transport: TransportSysV, Msgs: msgs}, clients)
	logCurve(t, "fig3a SGI BSS fixed", Config{Machine: sgi, Alg: core.BSS, Policy: "fixed", Msgs: msgs}, clients)
	logCurve(t, "fig3b IBM BSS fixed", Config{Machine: ibm, Alg: core.BSS, Policy: "fixed", Msgs: msgs}, clients)
	logCurve(t, "fig6a SGI BSW", Config{Machine: sgi, Alg: core.BSW, Msgs: msgs}, clients)
	logCurve(t, "fig6b IBM BSW", Config{Machine: ibm, Alg: core.BSW, Msgs: msgs}, clients)
	logCurve(t, "fig8a SGI BSWY", Config{Machine: sgi, Alg: core.BSWY, Msgs: msgs}, clients)
	logCurve(t, "fig8a SGI BSWY fixed", Config{Machine: sgi, Alg: core.BSWY, Policy: "fixed", Msgs: msgs}, clients)
	logCurve(t, "fig10a SGI BSLS spin=5", Config{Machine: sgi, Alg: core.BSLS, MaxSpin: 5, Msgs: msgs}, clients)
	logCurve(t, "fig10a SGI BSLS spin=20", Config{Machine: sgi, Alg: core.BSLS, MaxSpin: 20, Msgs: msgs}, clients)
}

func TestCalibrationYieldsPerRTT(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	res, err := RunSim(Config{Machine: machine.SGIIndy(), Alg: core.BSS, Clients: 1, Msgs: 1000})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("SGI BSS 1 client: rtt=%.1fus yields/msg client=%.2f server=%.2f vcs(server)=%d",
		res.RTTMicros, res.Clients.YieldsPerMsg(),
		float64(res.Server.Yields)/float64(res.Server.MsgsReceived), res.Server.VoluntaryCS)
}

func TestCalibrationMP(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	clients := []int{1, 2, 3, 4, 5, 6, 7}
	msgs := 1000
	mp := machine.SGIChallenge8()
	logCurve(t, "fig11 MP BSS", Config{Machine: mp, Alg: core.BSS, Msgs: msgs}, clients)
	logCurve(t, "fig11 MP BSLS spin=10", Config{Machine: mp, Alg: core.BSLS, MaxSpin: 10, Msgs: msgs}, clients)
	logCurve(t, "fig11 MP SYSV", Config{Machine: mp, Transport: TransportSysV, Msgs: msgs}, clients)
}

func TestCalibrationLinux(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	clients := []int{1, 2, 3, 4, 5, 6}
	lx := machine.Linux486()
	logCurve(t, "fig12 linux10 BSS", Config{Machine: lx, Policy: "linux10", Alg: core.BSS, Msgs: 50}, []int{1, 2})
	logCurve(t, "fig12 linuxmod BSS", Config{Machine: lx, Policy: "linuxmod", Alg: core.BSS, Msgs: 1000}, clients)
	logCurve(t, "fig12 linuxmod BSWY", Config{Machine: lx, Policy: "linuxmod", Alg: core.BSWY, Msgs: 1000}, clients)
	logCurve(t, "fig12 linuxmod BSWY+handoff", Config{Machine: lx, Policy: "linuxmod", Alg: core.BSWY, Handoff: true, Msgs: 1000}, clients)
	logCurve(t, "fig12 linuxmod SYSV", Config{Machine: lx, Policy: "linuxmod", Transport: TransportSysV, Msgs: 1000}, clients)
}
