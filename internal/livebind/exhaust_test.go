package livebind

import (
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
)

// TestBatchedPortPoolExhaustion drives a batched producer port whose
// refill batch exceeds the entire free pool: the cache's AllocN comes
// back short (and eventually empty), which must degrade to smaller
// allocations and then clean enqueue failure — never a panic or a spin
// — while the refill/spill traffic stays visible through the port's
// PoolRefills/PoolSpills counters.
func TestBatchedPortPoolExhaustion(t *testing.T) {
	const capacity = 4
	ch, err := NewChannel(queue.KindTwoLock, capacity)
	if err != nil {
		t.Fatal(err)
	}
	m := metrics.NewSet().NewProc("producer")
	p := newBatchedPort(ch, 3*capacity, m) // batch far beyond the pool
	if p.cache == nil {
		t.Fatal("two-lock channel did not get a cache")
	}

	// The pool holds capacity+1 nodes (one is the queue's dummy). Every
	// enqueue draws from the cache; the first refill can only come back
	// short. Fill the queue to the brim, then overrun it: the overruns
	// must fail fast with ok=false.
	done := make(chan int, 1)
	go func() {
		sent := 0
		for i := 0; i < 3*capacity; i++ {
			if p.TryEnqueue(core.Msg{Seq: int32(i)}) {
				sent++
			}
		}
		done <- sent
	}()
	var sent int
	select {
	case sent = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("enqueue against an exhausted pool spun instead of failing")
	}
	if sent != capacity {
		t.Fatalf("sent %d messages, want exactly %d (queue capacity)", sent, capacity)
	}
	if got := m.PoolRefills.Load(); got == 0 {
		t.Fatal("short AllocN refills not surfaced via PoolRefills")
	}

	// Drain the queue (the freed nodes rejoin the pool), send once more
	// so the next short refill leaves spare refs parked in the cache,
	// then retire the producer: the parked refs must spill back, and the
	// spill must be surfaced via PoolSpills.
	c := NewPort(ch)
	for i := 0; i < capacity; i++ {
		if _, ok := c.TryDequeue(); !ok {
			t.Fatalf("dequeue %d failed", i)
		}
	}
	if !p.TryEnqueue(core.Msg{Seq: 99}) {
		t.Fatal("enqueue after drain failed")
	}
	if _, ok := c.TryDequeue(); !ok {
		t.Fatal("final dequeue failed")
	}
	p.Close()
	if got := m.PoolSpills.Load(); got == 0 {
		t.Fatal("cache drain not surfaced via PoolSpills")
	}
	// With the cache drained and every message freed, the pool is whole
	// again: a fresh producer can run the queue to capacity once more.
	p2 := NewPort(ch)
	for i := 0; i < capacity; i++ {
		if !p2.TryEnqueue(core.Msg{Seq: int32(i)}) {
			t.Fatalf("enqueue %d after recovery failed: pool leaked", i)
		}
	}
}
