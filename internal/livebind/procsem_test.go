package livebind

import (
	"context"
	"sync"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

func newTestSem(t *testing.T) *ProcSem {
	t.Helper()
	seg, err := shm.NewHeapSeg(shm.SegConfig{Clients: 1, Nodes: 16, RingCap: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	v, _ := seg.View()
	return NewProcSem(&v.Sems[0], 5*time.Millisecond)
}

// Tokens are conserved under contention: N producers × K tokens each
// are consumed exactly once by M consumers, and the count ends at zero.
func TestProcSemTokenConservation(t *testing.T) {
	s := newTestSem(t)
	const producers, consumers, per = 4, 4, 500
	total := producers * per

	var wg sync.WaitGroup
	for i := 0; i < producers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				s.V()
			}
		}()
	}
	got := make(chan int, consumers)
	for i := 0; i < consumers; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c := 0
			for j := 0; j < n; j++ {
				s.P()
				c++
			}
			got <- c
		}(total / consumers)
	}
	wg.Wait()
	close(got)
	sum := 0
	for c := range got {
		sum += c
	}
	if sum != total {
		t.Fatalf("consumed %d tokens, produced %d", sum, total)
	}
	if s.Count() != 0 {
		t.Fatalf("count %d after balanced P/V, want 0", s.Count())
	}
}

// Poison unblocks a parked waiter promptly and P returns without a
// token (mirrors Semaphore.P after Close).
func TestProcSemPoisonUnblocks(t *testing.T) {
	s := newTestSem(t)
	done := make(chan bool, 1)
	go func() {
		slept := s.P()
		done <- slept
	}()
	time.Sleep(10 * time.Millisecond) // let it park
	s.Poison()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("P did not return after Poison")
	}
	if s.Count() != 0 {
		t.Fatalf("poisoned P consumed a token: count %d", s.Count())
	}
	// V on a poisoned semaphore is dropped.
	if s.V() {
		t.Fatal("V on poisoned semaphore claimed a wake")
	}
	if s.Count() != 0 {
		t.Fatalf("V on poisoned semaphore parked a token: count %d", s.Count())
	}
}

// A cancelled PCtx consumes no token; the token granted concurrently
// stays available for the next P.
func TestProcSemPCtxCancel(t *testing.T) {
	s := newTestSem(t)
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.PCtx(ctx)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	err := <-errc
	if err != context.Canceled {
		t.Fatalf("PCtx after cancel: %v, want context.Canceled", err)
	}
	s.V()
	if s.Count() != 1 {
		t.Fatalf("count %d after V with no waiters, want 1", s.Count())
	}
	if slept := s.P(); slept {
		t.Fatal("P slept with a token available")
	}

	// Poisoned PCtx surfaces ErrShutdown.
	s.Poison()
	if _, err := s.PCtx(context.Background()); err != core.ErrShutdown {
		t.Fatalf("PCtx on poisoned sem: %v, want ErrShutdown", err)
	}
}

// The val-check rendezvous: a V racing a parking waiter is never lost.
// Hammer the park/wake edge with single tokens.
func TestProcSemWakeRace(t *testing.T) {
	s := newTestSem(t)
	const rounds = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			s.P()
		}
	}()
	for i := 0; i < rounds; i++ {
		s.V()
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("consumer hung: a wake was lost")
	}
	if s.Count() != 0 {
		t.Fatalf("count %d after balanced rounds, want 0", s.Count())
	}
}
