package livebind

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

func testProcOptions(alg core.Algorithm) ProcOptions {
	return ProcOptions{
		Alg:            alg,
		SleepScale:     time.Millisecond,
		WaitSlice:      5 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
		SweepEvery:     5 * time.Millisecond,
		Lease:          time.Hour, // tests stage deaths explicitly
	}
}

// Full echo exchange through a segment: server + two clients, every
// message crossing lanes/pool/futex words exactly as two processes
// would (a heap segment is the same memory layout minus the mmap).
func TestProcEchoAllProtocols(t *testing.T) {
	for _, alg := range core.Algorithms() {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			t.Parallel()
			seg, err := shm.NewHeapSeg(shm.SegConfig{Clients: 2, Nodes: 128, RingCap: 16})
			if err != nil {
				t.Fatal(err)
			}
			defer seg.Close()

			srv, err := AttachProcServer(seg, testProcOptions(alg))
			if err != nil {
				t.Fatal(err)
			}
			var served int64
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				served = srv.Serve(nil)
			}()

			const perClient = 200
			clients := make([]*ProcClient, 2)
			for id := range clients {
				cl, err := AttachProcClient(seg, id, testProcOptions(alg))
				if err != nil {
					t.Fatal(err)
				}
				clients[id] = cl
			}
			// Barrier after connect: without it one client can finish
			// and disconnect before the other connects, dropping the
			// server's connected count to zero and ending Serve early.
			var ready sync.WaitGroup
			ready.Add(2)
			var cwg sync.WaitGroup
			for id := 0; id < 2; id++ {
				cwg.Add(1)
				go func(id int) {
					defer cwg.Done()
					cl := clients[id]
					defer cl.Close()
					r := cl.Send(core.Msg{Op: core.OpConnect})
					ready.Done()
					if r.Op != core.OpConnect {
						t.Errorf("client %d connect reply op %d", id, r.Op)
						return
					}
					ready.Wait()
					for i := 0; i < perClient; i++ {
						m := core.Msg{Op: core.OpEcho, Seq: int32(i), Val: float64(i) * 1.5}
						r := cl.Send(m)
						if r.Seq != m.Seq || r.Val != m.Val {
							t.Errorf("client %d echo %d: got %+v", id, i, r)
							return
						}
					}
					cl.Send(core.Msg{Op: core.OpDisconnect})
				}(id)
			}
			cwg.Wait()
			wg.Wait()
			srv.Close()

			if served != 2*perClient {
				t.Fatalf("served %d, want %d", served, 2*perClient)
			}
			// No refs leaked: the pool is whole after a clean run.
			v, _ := seg.View()
			if free := v.Pool.FreeCount(); free != 128 {
				t.Fatalf("pool free %d after clean run, want 128", free)
			}
		})
	}
}

// A client parked on its reply semaphore unblocks with ErrPeerDead when
// the sweeper declares the server dead (staged here by stalling a fake
// server's heartbeat past the lease).
func TestProcServerDeathUnblocksClient(t *testing.T) {
	seg, err := shm.NewHeapSeg(shm.SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	v, _ := seg.View()

	// A fake server that will never heartbeat: Pid 0 skips the pid
	// probe, so only the lease can declare it.
	v.Life[ServerSlot].State.Store(shm.LifeLive)

	opts := testProcOptions(core.BSW)
	opts.Lease = 30 * time.Millisecond
	cl, err := AttachProcClient(seg, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: 1})
	if !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("SendCtx against dead server: %v, want ErrPeerDead", err)
	}
	if !cl.Sys.SegDead() {
		t.Fatal("segment not marked dead after server death")
	}
	st := cl.Sys.Stats()
	if st.PeerDeaths != 1 || st.DeadSlot != ServerSlot {
		t.Fatalf("stats %+v, want one death at slot %d", st, ServerSlot)
	}
}

// A dead client's remains are recovered: its reply lane is drained back
// to the pool, its semaphore poisoned, and the server receives one
// compensating V for the wake-up the client may have died owing.
func TestProcClientDeathRescue(t *testing.T) {
	seg, err := shm.NewHeapSeg(shm.SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	v, _ := seg.View()

	opts := testProcOptions(core.BSW)
	opts.Lease = 30 * time.Millisecond
	opts.WaitSlice = 10 * time.Second // isolate the compensating-V path
	srv, err := AttachProcServer(seg, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan int64, 1)
	go func() {
		n, _ := srv.ServeCtx(ctx, nil)
		served <- n
	}()
	time.Sleep(50 * time.Millisecond) // let the server park

	// Fake client: joins, enqueues a request, dies before its V — the
	// permanently lost wake-up. The parked server cannot see it until
	// the sweeper's compensating V arrives.
	v.Life[1].State.Store(shm.LifeLive)
	ref, _ := v.Pool.Alloc()
	v.Arena().Node(ref).SetMsg(core.Msg{Op: core.OpEcho, Seq: 7, MsgMeta: core.MsgMeta{Client: 0}})
	v.ReqLane(0).TryPush(ref)
	// And one stale reply queued to it, to verify the drain.
	r2, _ := v.Pool.Alloc()
	v.ReplyLane(0).TryPush(r2)

	deadline := time.Now().Add(10 * time.Second)
	for srv.Sys.Stats().PeerDeaths == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweeper never declared the stalled client dead")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The compensating V must wake the parked server, which processes
	// the orphan request (the reply to the dead client is dropped at
	// the refusing port).
	for {
		select {
		case n := <-served:
			t.Fatalf("ServeCtx exited early with %d", n)
		default:
		}
		st := srv.Sys.Stats()
		if st.WakeRescues == 1 && st.OrphanMsgs == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats %+v, want WakeRescues=1 OrphanMsgs=1", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Close poisons the semaphores, so the parked ServeCtx exits
	// promptly — a ctx cancel alone is only noticed at the next
	// wait-slice boundary (10s here, by construction).
	srv.Close()
	n := <-served
	cancel()
	if n != 1 {
		t.Fatalf("served %d, want the orphan request processed", n)
	}
	// Post-mortem: with everyone gone the audit makes the pool whole.
	if _, _, _, err := v.Reclaim(); err != nil {
		t.Fatal(err)
	}
	if free := v.Pool.FreeCount(); free != 32 {
		t.Fatalf("pool free %d after reclaim, want 32", free)
	}
}

// Attachment is guarded: slots cannot be claimed twice, dead or
// shut-down segments refuse new participants.
func TestProcAttachErrors(t *testing.T) {
	seg, err := shm.NewHeapSeg(shm.SegConfig{Clients: 1, Nodes: 32, RingCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()

	opts := testProcOptions(core.BSW)
	opts.NoSweep = true
	srv, err := AttachProcServer(seg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachProcServer(seg, opts); err == nil {
		t.Fatal("second server attach succeeded")
	}
	if _, err := AttachProcClient(seg, 5, opts); err == nil {
		t.Fatal("out-of-range client attach succeeded")
	}
	cl, err := AttachProcClient(seg, 0, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AttachProcClient(seg, 0, opts); err == nil {
		t.Fatal("double client attach succeeded")
	}
	cl.Close()
	srv.Close() // server close → SegShutdown
	v, _ := seg.View()
	if got := v.Hdr.State.Load(); got != shm.SegShutdown {
		t.Fatalf("state %d after server close, want SegShutdown", got)
	}
	if _, err := AttachProcClient(seg, 0, opts); !errors.Is(err, core.ErrShutdown) {
		t.Fatalf("attach to shut-down segment: %v, want ErrShutdown", err)
	}
	v.Hdr.State.Store(shm.SegDead)
	if _, err := AttachProcClient(seg, 0, opts); !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("attach to dead segment: %v, want ErrPeerDead", err)
	}
}
