package core

import "testing"

// The paper's Section 1 security note: "Servers can protect themselves
// from clients by careful access to the shared memory queues." A hostile
// or corrupted client controls every field of the messages it enqueues —
// in particular the reply-channel number — and must not be able to crash
// or wedge the server.

func TestServerDropsOutOfRangeReplyChannel(t *testing.T) {
	h := newServerHarness(BSW, 2, 0)
	// Replies to invalid channels are silently dropped.
	h.srv.Reply(-1, Msg{Op: OpEcho})
	h.srv.Reply(2, Msg{Op: OpEcho})
	h.srv.Reply(1<<30, Msg{Op: OpEcho})
	for i, q := range h.replies {
		if len(q.msgs) != 0 {
			t.Fatalf("client %d received a stray reply", i)
		}
	}
}

func TestServeSurvivesHostileClientField(t *testing.T) {
	h := newServerHarness(BSW, 1, 0)
	script := []Msg{
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpEcho, MsgMeta: MsgMeta{Client: 99}},      // forged reply channel
		{Op: OpEcho, MsgMeta: MsgMeta{Client: -7}},      // negative reply channel
		{Op: OpWork, MsgMeta: MsgMeta{Client: 1 << 20}}, // far out of range
		{Op: OpEcho, MsgMeta: MsgMeta{Client: 0}},       // honest request
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}},
	}
	i := 0
	h.a.onP = func(id SemID) {
		if i < len(script) {
			h.push(script[i])
			i++
		}
		h.a.sems[0]++
	}
	served := h.srv.Serve(nil)
	// Only the honest echo counts; the forged requests are dropped
	// before any reply-channel access.
	if served != 1 {
		t.Fatalf("served = %d, want 1", served)
	}
	if len(h.replies[0].msgs) != 3 { // connect + echo + disconnect
		t.Fatalf("replies = %d, want 3", len(h.replies[0].msgs))
	}
}

func TestValidClient(t *testing.T) {
	h := newServerHarness(BSW, 3, 0)
	for _, tc := range []struct {
		client int32
		want   bool
	}{{-1, false}, {0, true}, {2, true}, {3, false}, {1 << 30, false}} {
		if got := h.srv.ValidClient(tc.client); got != tc.want {
			t.Errorf("ValidClient(%d) = %v, want %v", tc.client, got, tc.want)
		}
	}
}

func TestServeDropsForgedDisconnect(t *testing.T) {
	// A forged disconnect on an invalid channel must not decrement the
	// connection count and end the server early.
	h := newServerHarness(BSW, 1, 0)
	script := []Msg{
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 5}}, // forged
		{Op: OpEcho, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}},
	}
	i := 0
	h.a.onP = func(id SemID) {
		if i < len(script) {
			h.push(script[i])
			i++
		}
		h.a.sems[0]++
	}
	served := h.srv.Serve(nil)
	if served != 1 {
		t.Fatalf("served = %d, want 1 (forged disconnect must not end Serve early)", served)
	}
}
