package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunSensitivity checks the robustness of the headline Figure 2 shapes
// to the one scheduler parameter that is pure calibration (the
// priority-aging quantum): the claims — SGI BSS rising with clients and
// beating SYSV; IBM BSS falling — must hold across a wide band around
// the calibrated values, or the reproduction would be a knife-edge
// artefact.
func RunSensitivity(opt Options) (*Report, error) {
	r := newReport("sensitivity", "Calibration robustness: aging-quantum sweep",
		"the Figure 2 shape claims must not depend on the exact aging calibration")
	msgs := opt.msgs()
	clients := []int{1, 6}

	for _, scale := range []float64{0.5, 0.75, 1.0, 1.5, 2.0} {
		sgi := machine.SGIIndy()
		sgi.UsageQuantum = machine.Time(float64(sgi.UsageQuantum) * scale)
		bss, _, err := sweep(workload.Config{Machine: sgi, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		sysv, _, err := sweep(workload.Config{Machine: sgi, Transport: workload.TransportSysV}, clients, msgs)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("sensitivity/sgi/%.2f", scale)
		r.Records[key+"/bss1"] = bss[0]
		r.Records[key+"/bss6"] = bss[1]
		r.Records[key+"/sysv1"] = sysv[0]
		r.Records[key+"/rising"] = boolTo01(bss[1] > bss[0])
		r.Records[key+"/beats_sysv"] = boolTo01(bss[0] > sysv[0])

		ibm := machine.IBMP4()
		ibm.UsageQuantum = machine.Time(float64(ibm.UsageQuantum) * scale)
		ibss, _, err := sweep(workload.Config{Machine: ibm, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		ikey := fmt.Sprintf("sensitivity/ibm/%.2f", scale)
		r.Records[ikey+"/bss1"] = ibss[0]
		r.Records[ikey+"/bss6"] = ibss[1]
		r.Records[ikey+"/falling"] = boolTo01(ibss[1] < ibss[0])
	}

	t := throughputSensitivityTable(r)
	r.Tables = append(r.Tables, t)
	r.note("Scale multiplies the machine's UsageQuantum (priority levels per CPU consumed). The rising/falling/beats-SYSV columns are the shape claims under test.")
	r.note("Finding: IBM's falling shape is robust across the whole band; SGI's rising shape holds for scales >= 1 — i.e. whenever yields are sticky enough that a single spinning pair wastes multiple yields per exchange, which is exactly the regime the paper's own 2.5-yields-per-RTT instrumentation places IRIX in. Below that, 1-client BSS is already efficient and batching cannot improve on it.")
	return r, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func throughputSensitivityTable(r *Report) *chart.Table {
	t := &chart.Table{}
	t.Title = "Aging-quantum sensitivity (x = calibrated value)"
	t.Headers = []string{"scale", "SGI BSS 1c", "SGI BSS 6c", "rising?", "beats SYSV?", "IBM BSS 1c", "IBM BSS 6c", "falling?"}
	for _, scale := range []string{"0.50", "0.75", "1.00", "1.50", "2.00"} {
		sk := "sensitivity/sgi/" + scale
		ik := "sensitivity/ibm/" + scale
		t.AddRow(scale,
			f2(r.Records[sk+"/bss1"]), f2(r.Records[sk+"/bss6"]),
			yn(r.Records[sk+"/rising"]), yn(r.Records[sk+"/beats_sysv"]),
			f2(r.Records[ik+"/bss1"]), f2(r.Records[ik+"/bss6"]),
			yn(r.Records[ik+"/falling"]))
	}
	return t
}

func yn(v float64) string {
	if v > 0.5 {
		return "yes"
	}
	return "no"
}
