package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(64)
	if r.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", r.Cap())
	}
	// Fill the ring twice plus a bit: only the newest 64 events survive.
	const total = 64*2 + 10
	for i := 1; i <= total; i++ {
		r.Note(EvSend, 0, int64(i))
	}
	if r.Len() != total {
		t.Fatalf("len = %d, want %d", r.Len(), total)
	}
	evs := r.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("held %d events, want 64", len(evs))
	}
	// Sequence order, contiguous, and exactly the newest window.
	for i, e := range evs {
		wantSeq := uint64(total - 64 + 1 + i)
		if e.Seq != wantSeq {
			t.Fatalf("event %d: seq = %d, want %d", i, e.Seq, wantSeq)
		}
		if e.Arg != int64(wantSeq) {
			t.Fatalf("event %d: arg = %d, want %d", i, e.Arg, wantSeq)
		}
		if e.Kind != EvSend {
			t.Fatalf("event %d: kind = %v", i, e.Kind)
		}
	}
}

func TestRecorderCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{1, 64}, {64, 64}, {65, 128}, {1000, 1024},
	} {
		if got := NewFlightRecorder(tc.ask).Cap(); got != tc.want {
			t.Errorf("cap(%d) = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

// TestRecorderConcurrent runs writers against concurrent snapshots; under
// -race this proves Note/Snapshot are clean, and the assertions check no
// snapshot ever yields a torn or duplicated event.
func TestRecorderConcurrent(t *testing.T) {
	r := NewFlightRecorder(256)
	const writers = 4
	const per = 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for {
			evs := r.Snapshot()
			seen := map[uint64]bool{}
			for _, e := range evs {
				if seen[e.Seq] {
					t.Errorf("duplicate seq %d in snapshot", e.Seq)
					return
				}
				seen[e.Seq] = true
				// Writers encode actor -> kind and arg consistently; a torn
				// slot read would break the relation.
				if e.Arg%int64(writers) != int64(e.Actor) {
					t.Errorf("torn event: actor %d with arg %d", e.Actor, e.Arg)
					return
				}
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Note(EvWake, int32(w), int64(i*writers+w))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if r.Len() != writers*per {
		t.Fatalf("len = %d, want %d", r.Len(), writers*per)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *FlightRecorder
	r.Note(EvSend, 0, 1) // must not panic
	if r.Len() != 0 || r.Cap() != 0 || r.Snapshot() != nil {
		t.Fatal("nil recorder should be inert")
	}
}

func TestObserverDump(t *testing.T) {
	o := New(Config{RecorderCap: 64})
	cli := o.RegisterActor("client0")
	srv := o.RegisterActor("server")
	h := o.Hook(0, cli)
	h.Note(EvSend, 7)
	o.Recorder().Note(EvWake, srv, 3)
	o.Recorder().Note(EvShutdown, -1, 2)

	var b strings.Builder
	o.Dump(&b)
	out := b.String()
	for _, want := range []string{"flight recorder:", "client0", "server", "send", "wake", "shutdown", "arg=7", "arg=2"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}
	// Unattributed events resolve to "?" rather than panicking.
	if !strings.Contains(out, "?") {
		t.Errorf("unattributed actor not rendered as ?:\n%s", out)
	}
}

func TestObserverDumpNoRecorder(t *testing.T) {
	o := New(Config{})
	var b strings.Builder
	o.Dump(&b) // no recorder attached: a silent no-op
	if b.Len() != 0 {
		t.Fatalf("dump without recorder wrote %q", b.String())
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvSend, EvRecv, EvBlock, EvWake, EvRetry, EvCancel, EvTimeout, EvShutdown}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || strings.HasPrefix(s, "ev(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[s] {
			t.Errorf("duplicate kind name %q", s)
		}
		seen[s] = true
	}
	if got := EventKind(200).String(); !strings.HasPrefix(got, "ev(") {
		t.Errorf("unknown kind = %q", got)
	}
}
