// Command benchcmp compares two BENCH_live.json documents (a committed
// baseline and a fresh candidate run) cell by cell and enforces the CI
// bench gate: a median-RTT regression past the warn threshold prints a
// warning, past the fail threshold it exits non-zero.
//
// Usage:
//
//	benchcmp [-warn 10] [-fail 25] baseline.json candidate.json...
//
// Cells are matched on (queue, alg, clients) — plus the shard count for
// server-group cells. The compared metric is
// the p50 RTT (rtt_p50_ns) when both documents carry it, falling back
// to the mean (ns_per_rtt) otherwise — the p50 is the gate's preferred
// signal because a median is far less sensitive to a single slow
// outlier round trip than the mean.
//
// More than one candidate file may be given: each cell then compares
// its fastest candidate sample (best-of-K). A single benchmark run on
// a shared CI box jitters by 10–20%; its distribution floor is far more
// stable, so best-of-K is what gates. The committed baseline is itself
// one sample, which biases best-of-K toward leniency — acceptable for
// a gate that wants to catch real regressions, not noise.
//
// When the two documents were generated on visibly different
// environments (GOMAXPROCS or CPU count differ), failures are
// downgraded to warnings: cross-machine numbers gate nothing, they only
// inform. Improvements never fail, whatever their size.
//
// Payload cells (pay_size > 0) carry the payload size and transfer mode
// in their key (".../p1024/zc" vs ".../p1024/copy") so a copy-mode cell
// never gates its zero-copy twin, and they compare on bytes_per_sec —
// the axis those cells exist to measure — with the regression sign
// flipped (lower throughput is the regression). A baseline that simply
// predates the payload sweep leaves them unmatched, which reports
// informationally instead of failing the gate.
//
// Open-loop overload cells (queue "openloop", keyed with their rate
// factor ".../x2" and "/burst" variant) compare on goodput_per_sec —
// completions within deadline per second, the axis the overload sweep
// exists to measure — with the regression sign flipped like the other
// throughput axes. Their closed-loop capacity probes ("openloop-base")
// stay on the RTT axis. A baseline that predates the overload sweep
// leaves both unmatched: they inform, they never gate.
//
// Cross-process cells (queue "xproc"/"xproc-base") get two extra
// leniencies in the same spirit: when the two documents were built with
// different sleep/wake backends (futex_backend field: futex vs poll)
// their failures downgrade to warnings, and when the committed baseline
// simply predates the cross-process sweep the candidate's xproc cells
// are reported informationally instead of failing the gate — a stale
// baseline is a reason to refresh BENCH_live.json, not to block a PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"ulipc/internal/workload"
)

// cellDelta is one compared cell.
type cellDelta struct {
	Key      string  // queue/alg/clients[/shards][/p<size>/<mode>]
	Metric   string  // which field was compared
	BaseNs   float64 // baseline value (ns, or bytes/s for payload cells)
	CandNs   float64
	DeltaPct float64 // normalised so positive = regressed, whatever the axis
}

// compareResult is the outcome of comparing two reports.
type compareResult struct {
	Cells       []cellDelta
	Missing     []string // baseline cells absent from the candidate
	Extra       []string // candidate cells absent from the baseline
	EnvMismatch bool     // GOMAXPROCS/NumCPU differ between documents

	// BackendMismatch: the two documents were built with different
	// sleep/wake backends (futex vs poll). Cross-process (xproc) cells
	// are then not comparable — their failures downgrade to warnings,
	// mirroring the env-mismatch downgrade. In-process cells never
	// touch the backend and keep gating.
	BackendMismatch bool

	// ProcBaselineGap: the candidate carries cross-process cells the
	// baseline predates. Those cells are already unmatched (Extra), so
	// they gate nothing; the flag only drives the explanatory note.
	ProcBaselineGap bool

	// PayBaselineGap: same for payload (pay_size > 0) cells — the
	// baseline predates the zero-copy sweep.
	PayBaselineGap bool

	// OpenLoopBaselineGap: same for open-loop overload cells ("openloop"
	// and "openloop-base") — the baseline predates the overload sweep.
	OpenLoopBaselineGap bool
}

// procCell reports whether a cell key belongs to the cross-process
// sweep (queue "xproc" or its in-process twin "xproc-base").
func procCell(key string) bool { return strings.HasPrefix(key, "xproc") }

// payCell reports whether a cell key belongs to the zero-copy payload
// sweep (a "/p<size>/" component, or the sweep's size-0 reference cell
// on the "payload" queue kind).
func payCell(key string) bool {
	return strings.Contains(key, "/p") || strings.HasPrefix(key, "payload/")
}

// openLoopCell reports whether a cell key belongs to the open-loop
// overload sweep (queue "openloop" or its interleaved closed-loop
// capacity probe "openloop-base").
func openLoopCell(key string) bool { return strings.HasPrefix(key, "openloop") }

// cellKey identifies a cell. Server-group cells additionally carry the
// shard count, payload cells the payload size and transfer mode;
// single-server header-only cells keep the legacy three-part key, so
// documents from before those sweeps still match.
func cellKey(e workload.LiveBenchEntry) string {
	key := fmt.Sprintf("%s/%s/%dc", e.Queue, e.Alg, e.Clients)
	if e.Shards > 0 {
		key += fmt.Sprintf("/%ds", e.Shards)
	}
	if e.PaySize > 0 {
		mode := "copy"
		if e.ZeroCopy {
			mode = "zc"
		}
		key += fmt.Sprintf("/p%d/%s", e.PaySize, mode)
	}
	// Open-loop cells at different offered rates are different
	// experiments; a 2x overload cell must never gate (or be gated by)
	// the 0.5x underload cell, and a bursty arrival process is its own
	// variant.
	if e.RateFactor > 0 {
		key += fmt.Sprintf("/x%g", e.RateFactor)
	}
	if e.Burst {
		key += "/burst"
	}
	return key
}

// metricOf picks the compared metric for a pair of entries: bytes/s for
// payload cells and goodput/s for open-loop overload cells (the axes
// those cells exist to measure; the caller flips the regression sign on
// both), p50 RTT when both runs recorded histograms, mean RTT
// otherwise.
func metricOf(base, cand workload.LiveBenchEntry) (name string, b, c float64) {
	if base.PaySize > 0 && base.BytesPerSec > 0 && cand.BytesPerSec > 0 {
		return "bytes_per_sec", base.BytesPerSec, cand.BytesPerSec
	}
	if base.GoodputPerSec > 0 && cand.GoodputPerSec > 0 {
		return "goodput_per_sec", base.GoodputPerSec, cand.GoodputPerSec
	}
	if base.RTTP50Ns > 0 && cand.RTTP50Ns > 0 {
		return "rtt_p50_ns", base.RTTP50Ns, cand.RTTP50Ns
	}
	return "ns_per_rtt", base.NsPerRTT, cand.NsPerRTT
}

// compare matches the candidate's cells against the baseline's.
// Errored or empty cells on either side are skipped — a watchdog-tripped
// baseline cell carries partial numbers that gate nothing.
func compare(base, cand *workload.LiveBenchReport) compareResult {
	res := compareResult{
		EnvMismatch:     base.GOMAXPROCS != cand.GOMAXPROCS || base.NumCPU != cand.NumCPU,
		BackendMismatch: base.FutexBackend != cand.FutexBackend,
	}
	baseBy := make(map[string]workload.LiveBenchEntry, len(base.Entries))
	for _, e := range base.Entries {
		baseBy[cellKey(e)] = e
	}
	seen := make(map[string]bool, len(cand.Entries))
	for _, c := range cand.Entries {
		key := cellKey(c)
		seen[key] = true
		b, ok := baseBy[key]
		if !ok {
			res.Extra = append(res.Extra, key)
			if procCell(key) {
				res.ProcBaselineGap = true
			}
			if payCell(key) {
				res.PayBaselineGap = true
			}
			if openLoopCell(key) {
				res.OpenLoopBaselineGap = true
			}
			continue
		}
		if b.Error != "" || c.Error != "" {
			continue
		}
		metric, bv, cv := metricOf(b, c)
		if bv <= 0 || cv <= 0 {
			continue
		}
		delta := (cv - bv) / bv * 100
		if metric == "bytes_per_sec" || metric == "goodput_per_sec" {
			// Throughput axes: a lower candidate is the regression.
			delta = -delta
		}
		res.Cells = append(res.Cells, cellDelta{
			Key:      key,
			Metric:   metric,
			BaseNs:   bv,
			CandNs:   cv,
			DeltaPct: delta,
		})
	}
	for _, e := range base.Entries {
		if !seen[cellKey(e)] {
			res.Missing = append(res.Missing, cellKey(e))
		}
	}
	return res
}

// gate renders the comparison and applies the thresholds. It returns
// the number of failing cells (post-downgrade) — non-zero means the
// gate is closed.
func gate(w io.Writer, res compareResult, warnPct, failPct float64) int {
	fails := 0
	for _, c := range res.Cells {
		status := "ok"
		switch {
		case c.DeltaPct > failPct:
			switch {
			case res.EnvMismatch:
				status = "WARN (fail downgraded: env mismatch)"
			case res.BackendMismatch && procCell(c.Key):
				status = "WARN (fail downgraded: futex backend mismatch)"
			default:
				status = "FAIL"
				fails++
			}
		case c.DeltaPct > warnPct:
			status = "WARN"
		case c.DeltaPct < -warnPct:
			status = "improved"
		}
		fmt.Fprintf(w, "%-28s %-10s %12.0f -> %12.0f  %+7.1f%%  %s\n",
			c.Key, c.Metric, c.BaseNs, c.CandNs, c.DeltaPct, status)
	}
	// The bench gate deliberately runs a subset of the full matrix, so a
	// long "missing" list is the normal case — summarise past a few.
	if len(res.Missing) > 3 {
		fmt.Fprintf(w, "%d baseline cell(s) not in the candidate subset (no gate)\n", len(res.Missing))
	} else {
		for _, k := range res.Missing {
			fmt.Fprintf(w, "%-28s missing from candidate run\n", k)
		}
	}
	for _, k := range res.Extra {
		fmt.Fprintf(w, "%-28s not in baseline (no gate)\n", k)
	}
	if res.EnvMismatch {
		fmt.Fprintf(w, "note: baseline and candidate environments differ (GOMAXPROCS/CPUs); regressions warn but never fail\n")
	}
	if res.BackendMismatch {
		fmt.Fprintf(w, "note: sleep/wake backends differ (futex vs poll); cross-process cells warn but never fail\n")
	}
	if res.ProcBaselineGap {
		fmt.Fprintf(w, "note: baseline predates the cross-process sweep; xproc cells inform but never gate\n")
	}
	if res.PayBaselineGap {
		fmt.Fprintf(w, "note: baseline predates the zero-copy payload sweep; payload cells inform but never gate\n")
	}
	if res.OpenLoopBaselineGap {
		fmt.Fprintf(w, "note: baseline predates the open-loop overload sweep; openloop cells inform but never gate\n")
	}
	if fails > 0 {
		fmt.Fprintf(w, "bench gate: %d cell(s) regressed past %.0f%%\n", fails, failPct)
	}
	return fails
}

func load(path string) (*workload.LiveBenchReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rep workload.LiveBenchReport
	if err := json.NewDecoder(f).Decode(&rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	warnPct := flag.Float64("warn", 10, "warn when a cell's median RTT regresses by more than this percentage")
	failPct := flag.Float64("fail", 25, "fail (exit 1) when a cell's median RTT regresses by more than this percentage")
	flag.Parse()
	if flag.NArg() < 2 {
		fmt.Fprintf(os.Stderr, "usage: benchcmp [-warn pct] [-fail pct] baseline.json candidate.json...\n")
		os.Exit(2)
	}
	base, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(2)
	}
	var cands []*workload.LiveBenchReport
	for _, arg := range flag.Args()[1:] {
		c, err := load(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
			os.Exit(2)
		}
		cands = append(cands, c)
	}
	if len(cands) > 1 {
		fmt.Printf("best-of-%d candidate runs per cell\n", len(cands))
	}
	if gate(os.Stdout, compare(base, workload.MergeBest(cands)), *warnPct, *failPct) > 0 {
		os.Exit(1)
	}
}
