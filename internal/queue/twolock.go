package queue

import (
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/shm"
)

// TwoLock is the Michael & Scott two-lock concurrent queue [Michael &
// Scott, PODC'96] over an offset-addressed node arena. A dummy node
// decouples the head and tail locks so enqueuers never contend with
// dequeuers; the fixed-size node pool provides flow control.
//
// The head half (lock + dummy ref, touched by dequeuers) and the tail
// half (lock + tail ref, touched by enqueuers) live on separate
// 64-byte cache lines: the two-lock design's whole point is that the
// two parties don't contend, and sharing a line would reintroduce that
// contention as coherence traffic.
//
// Both locks are generation-stamped rlocks rather than sync.Mutexes so
// a holder that dies mid-critical-section (injected by internal/fault,
// or a real peer death in a shared-memory deployment) can have its lock
// reclaimed and the node list re-validated by RecoverDead — the robust-
// mutex story for the queue.
type TwoLock struct {
	pool     *shm.Pool
	capacity int

	_      [64]byte
	headMu rlock
	head   atomic.Uint32 // dummy node ref; head.next is the first real element

	_      [64]byte
	tailMu rlock
	tail   shm.Ref
	_      [64]byte
}

// NewTwoLock builds a two-lock queue holding at most capacity messages.
func NewTwoLock(capacity int) (*TwoLock, error) {
	// One extra node for the dummy.
	pool, err := shm.NewPoolSize(capacity + 1)
	if err != nil {
		return nil, err
	}
	dummy, ok := pool.Alloc()
	if !ok {
		panic("queue: fresh pool exhausted")
	}
	pool.Arena().Node(dummy).SetNext(shm.NilRef)
	q := &TwoLock{pool: pool, tail: dummy, capacity: capacity}
	q.head.Store(dummy)
	return q, nil
}

// Cap implements Queue.
func (q *TwoLock) Cap() int { return q.capacity }

// Pool exposes the backing node pool. Producers that batch their
// allocations (shm.PoolCache) draw from it and hand the node to
// EnqueueRef.
func (q *TwoLock) Pool() *shm.Pool { return q.pool }

// Enqueue implements Queue.
func (q *TwoLock) Enqueue(m core.Msg) bool {
	return q.EnqueueAs(AnonOwner, m, fault.Hook{})
}

// EnqueueAs is Enqueue with an owner identity for robust-lock
// accounting and a fault hook whose crashpoints may kill the caller
// mid-critical-section. The critical section deliberately has no
// deferred unlock: an injected crash must leave the lock held so
// RecoverDead has something real to reclaim.
func (q *TwoLock) EnqueueAs(owner int32, m core.Msg, fh fault.Hook) bool {
	node, ok := q.pool.Alloc()
	if !ok {
		return false // pool exhausted: queue full
	}
	q.EnqueueRefAs(owner, node, m, fh)
	return true
}

// EnqueueRef appends a node the caller already allocated from Pool()
// (directly or through a shm.PoolCache). The caller transfers ownership
// of the ref to the queue.
func (q *TwoLock) EnqueueRef(node shm.Ref, m core.Msg) {
	q.EnqueueRefAs(AnonOwner, node, m, fault.Hook{})
}

// EnqueueRefAs is EnqueueRef with owner identity and fault hook. The
// pending-ref window (allocated, not yet reachable from the queue) is
// registered with the hook so a crash inside it leaves a reclaimable
// orphan rather than a leaked node.
func (q *TwoLock) EnqueueRefAs(owner int32, node shm.Ref, m core.Msg, fh fault.Hook) {
	fh.SetPending(q.pool, node)
	fh.Crashpoint(fault.PtAfterAlloc) // dies owning an unlinked node

	a := q.pool.Arena()
	n := a.Node(node)
	n.SetMsg(m)
	n.SetNext(shm.NilRef)

	h := q.tailMu.Lock(owner)
	a.Node(q.tail).SetNext(node)
	// The node is now reachable from the tail walk, so it is the
	// queue's — clear pending BEFORE the crashpoint or the sweeper
	// would free a linked node.
	fh.ClearPending()
	fh.Crashpoint(fault.PtEnqueueLocked) // dies holding tailMu, tail stale
	q.tail = node
	q.tailMu.Unlock(h)
}

// Dequeue implements Queue.
func (q *TwoLock) Dequeue() (core.Msg, bool) {
	return q.DequeueAs(AnonOwner, fault.Hook{})
}

// DequeueAs is Dequeue with owner identity and fault hook. A crash
// while holding the head lock leaves the message still queued (head not
// yet advanced), so recovery merely reclaims the lock and the message
// is re-delivered; a crash after unlock but before the free leaves the
// old dummy as a pending ref the sweeper returns to the pool.
func (q *TwoLock) DequeueAs(owner int32, fh fault.Hook) (core.Msg, bool) {
	a := q.pool.Arena()
	h := q.headMu.Lock(owner)
	dummy := q.head.Load()
	first := a.Node(dummy).Next()
	if first == shm.NilRef {
		q.headMu.Unlock(h)
		return core.Msg{}, false
	}
	m := a.Node(first).Msg()
	fh.Crashpoint(fault.PtDequeueLocked) // dies holding headMu, msg still queued
	q.head.Store(first)                  // first becomes the new dummy
	fh.SetPending(q.pool, dummy)
	q.headMu.Unlock(h)
	fh.Crashpoint(fault.PtBeforeFree) // dies owning the unlinked old dummy
	q.pool.Free(dummy)
	fh.ClearPending()
	return m, true
}

// Empty implements Queue. It is lock-free: an atomic load of the dummy
// ref followed by an atomic load of that node's link, so the BSLS spin
// loop can poll it without contending with dequeuers on the head lock.
//
// The read races benignly with Dequeue: the loaded dummy may be freed
// (its link rewritten by the pool) between the two loads, yielding a
// stale answer — acceptable for Empty's documented contract of a
// non-destructive poll that may race. Callers act on the answer by
// attempting a real (locked) dequeue, which re-checks.
func (q *TwoLock) Empty() bool {
	return q.pool.Arena().Node(q.head.Load()).Next() == shm.NilRef
}

// Len returns the number of queued messages (O(n); diagnostics only).
func (q *TwoLock) Len() int {
	a := q.pool.Arena()
	h := q.headMu.Lock(AnonOwner)
	n := 0
	for r := a.Node(q.head.Load()).Next(); r != shm.NilRef; r = a.Node(r).Next() {
		n++
	}
	q.headMu.Unlock(h)
	return n
}

// RecoverDead reclaims the locks a dead owner left held, repairing the
// structure first, and reports how many locks were revoked. The caller
// (livebind's sweeper) guarantees the owner's goroutine is gone; no
// third party can slip into the dead owner's critical section during
// repair because the lock word still names the dead owner until the
// revoking CAS.
//
// When several owners may have died holding locks on the same queue,
// call RecoverDeadHead for every dead owner before any RecoverDeadTail:
// the tail repair acquires the head lock, and would otherwise spin on a
// dead dequeuer's lock that nobody has revoked yet.
//
// Safe to call for owners that hold nothing (returns 0), and safe to
// call repeatedly.
func (q *TwoLock) RecoverDead(owner int32) int {
	return q.RecoverDeadHead(owner) + q.RecoverDeadTail(owner)
}

// RecoverDeadHead revokes the head lock if the dead owner holds it.
// Every crashpoint under the head lock fires before the head ref moves,
// so the structure is already consistent: the lock is simply revoked
// and the in-flight message re-delivered to the next dequeuer.
func (q *TwoLock) RecoverDeadHead(owner int32) int {
	if q.headMu.HeldBy(owner) && q.headMu.Revoke(owner) {
		return 1
	}
	return 0
}

// RecoverDeadTail repairs the tail and revokes the tail lock if the
// dead owner holds it. The dead enqueuer may have linked its node
// without advancing the tail (PtEnqueueLocked); the linked message is
// preserved and delivered.
//
// The repair cannot trust the stale tail ref: while the dead owner held
// the lock, dequeuers were free to advance the dummy PAST the stale
// tail and hand that node back to the pool, after which its link word
// belongs to the free list, not the queue. The only trustworthy walk
// starts at the head dummy, and it is only stable with dequeuers held
// off — so the repair takes the head lock, re-derives the true tail
// from the dummy, and revokes the tail lock before letting dequeuers
// back in (a dequeuer running between the repair and the revoke could
// free the repaired tail all over again).
func (q *TwoLock) RecoverDeadTail(owner int32) int {
	if !q.tailMu.HeldBy(owner) {
		return 0
	}
	locks := 0
	h := q.headMu.Lock(AnonOwner)
	q.repairTail()
	if q.tailMu.Revoke(owner) {
		locks++
	}
	q.headMu.Unlock(h)
	return locks
}

// repairTail advances the tail ref to the true end of the list, walking
// from the head dummy (the one ref that is always a live queue node).
// Called with BOTH locks held — the tail lock by the dead owner being
// recovered, the head lock by the recoverer — so neither end of the
// list can move mid-walk.
func (q *TwoLock) repairTail() {
	a := q.pool.Arena()
	t := q.head.Load()
	for {
		n := a.Node(t).Next()
		if n == shm.NilRef {
			break
		}
		t = n
	}
	q.tail = t
}
