package core

import (
	"testing"

	"ulipc/internal/metrics"
)

// fakePort is a deterministic in-memory Port for white-box protocol
// tests.
type fakePort struct {
	msgs     []Msg
	capacity int
	awake    bool
	sem      SemID

	enqAttempts int
	deqAttempts int
	tasCalls    int
}

func newFakePort(sem SemID, capacity int) *fakePort {
	return &fakePort{capacity: capacity, awake: true, sem: sem}
}

func (p *fakePort) TryEnqueue(m Msg) bool {
	p.enqAttempts++
	if len(p.msgs) >= p.capacity {
		return false
	}
	p.msgs = append(p.msgs, m)
	return true
}

func (p *fakePort) TryDequeue() (Msg, bool) {
	p.deqAttempts++
	if len(p.msgs) == 0 {
		return Msg{}, false
	}
	m := p.msgs[0]
	p.msgs = p.msgs[1:]
	return m, true
}

func (p *fakePort) Empty() bool { return len(p.msgs) == 0 }

func (p *fakePort) SetAwake(v bool) { p.awake = v }

func (p *fakePort) TASAwake() bool {
	p.tasCalls++
	old := p.awake
	p.awake = true
	return old
}

func (p *fakePort) Sem() SemID { return p.sem }

// fakeActor is a deterministic Actor: semaphores are plain counters and
// the onP hook lets a test inject work when the protocol would block.
type fakeActor struct {
	sems      []int
	yields    int
	busyWaits int
	polls     int
	sleeps    int
	handoffs  []int

	onP       func(SemID) // called when P would block (count == 0)
	onYield   func()
	onBusy    func()
	blockedAt int
}

func newFakeActor(nsems int) *fakeActor { return &fakeActor{sems: make([]int, nsems)} }

func (a *fakeActor) Yield() {
	a.yields++
	if a.onYield != nil {
		a.onYield()
	}
}

func (a *fakeActor) BusyWait() {
	a.busyWaits++
	if a.onBusy != nil {
		a.onBusy()
	}
}

func (a *fakeActor) PollDelay() {
	a.polls++
	if a.onBusy != nil {
		a.onBusy()
	}
}

func (a *fakeActor) SleepSec(s int) { a.sleeps++ }

func (a *fakeActor) P(id SemID) {
	if a.sems[id] == 0 {
		a.blockedAt++
		if a.onP == nil {
			panic("fakeActor: P would block and no onP hook is set")
		}
		a.onP(id)
	}
	if a.sems[id] == 0 {
		panic("fakeActor: onP hook did not make the P succeed")
	}
	a.sems[id]--
}

func (a *fakeActor) V(id SemID) { a.sems[id]++ }

func (a *fakeActor) Handoff(target int) { a.handoffs = append(a.handoffs, target) }

var (
	_ Port  = (*fakePort)(nil)
	_ Actor = (*fakeActor)(nil)
)

func TestEnqueueOrSleepRetriesOnFull(t *testing.T) {
	q := newFakePort(0, 1)
	a := newFakeActor(1)
	q.TryEnqueue(Msg{}) // fill
	go func() {}()
	// Drain the queue from the sleep hook so the retry succeeds.
	drained := false
	origSleep := a.sleeps
	aSleep := func() {
		if !drained {
			q.msgs = q.msgs[:0]
			drained = true
		}
	}
	// fakeActor has no sleep hook; emulate by wrapping.
	wrapped := &sleepHookActor{fakeActor: a, hook: aSleep}
	enqueueOrSleep(q, wrapped, Msg{Val: 7})
	if !drained {
		t.Fatal("expected a queue-full sleep before success")
	}
	if a.sleeps != origSleep+1 {
		t.Fatalf("sleeps = %d", a.sleeps)
	}
	if len(q.msgs) != 1 || q.msgs[0].Val != 7 {
		t.Fatalf("queue = %+v", q.msgs)
	}
}

type sleepHookActor struct {
	*fakeActor
	hook func()
}

func (a *sleepHookActor) SleepSec(s int) {
	a.fakeActor.SleepSec(s)
	a.hook()
}

func TestWakeConsumerOnlyWhenFlagClear(t *testing.T) {
	q := newFakePort(0, 4)
	a := newFakeActor(1)

	q.awake = true
	if wakeConsumer(q, a) {
		t.Fatal("must not V an awake consumer")
	}
	if a.sems[0] != 0 {
		t.Fatalf("sem = %d", a.sems[0])
	}

	q.awake = false
	if !wakeConsumer(q, a) {
		t.Fatal("must V a sleeping consumer")
	}
	if a.sems[0] != 1 {
		t.Fatalf("sem = %d", a.sems[0])
	}
	if !q.awake {
		t.Fatal("TAS must set the flag")
	}

	// A second producer now sees the flag set: no V.
	if wakeConsumer(q, a) {
		t.Fatal("second producer must not V (Interleaving 2 fix)")
	}
	if a.sems[0] != 1 {
		t.Fatalf("sem = %d after redundant wake attempt", a.sems[0])
	}
}

func TestConsumerWaitImmediateSuccess(t *testing.T) {
	q := newFakePort(0, 4)
	a := newFakeActor(1)
	q.TryEnqueue(Msg{Val: 1})
	m := consumerWait(q, a, nil)
	if m.Val != 1 {
		t.Fatalf("got %+v", m)
	}
	if !q.awake {
		t.Fatal("flag must remain set on the fast path")
	}
	if a.blockedAt != 0 {
		t.Fatal("fast path must not block")
	}
}

func TestConsumerWaitBlocksThenWakes(t *testing.T) {
	q := newFakePort(0, 4)
	a := newFakeActor(1)
	// The producer "runs" while we are blocked: enqueue + V.
	a.onP = func(id SemID) {
		q.msgs = append(q.msgs, Msg{Val: 42})
		a.sems[id]++
	}
	m := consumerWait(q, a, nil)
	if m.Val != 42 {
		t.Fatalf("got %+v", m)
	}
	if a.blockedAt != 1 {
		t.Fatalf("blockedAt = %d, want exactly one block", a.blockedAt)
	}
	if !q.awake {
		t.Fatal("C.5 must set the flag after waking")
	}
}

func TestConsumerWaitDrainsPendingWake(t *testing.T) {
	// Interleaving 3: the reply lands between the two dequeues AND the
	// producer issued a V (flag was observed clear). The consumer must
	// drain the pending V without blocking.
	q := newFakePort(0, 4)
	a := newFakeActor(1)
	first := true
	drainQ := q
	// Simulate: first dequeue empty; then producer enqueues, TASes the
	// flag (sets it) and Vs; second dequeue succeeds.
	q.awake = true
	hook := func() {
		if first {
			first = false
			drainQ.msgs = append(drainQ.msgs, Msg{Val: 9})
			// producer's TAS: finds the flag clear (consumer just
			// cleared it), sets it, and Vs.
			drainQ.awake = true
			a.sems[0]++
		}
	}
	// Use the dequeue-attempt counter to trigger the hook after C.2:
	// wrap via SetAwake.
	wrapped := &setAwakeHookPort{fakePort: q, onClear: hook}
	m := consumerWait(wrapped, a, nil)
	if m.Val != 9 {
		t.Fatalf("got %+v", m)
	}
	if a.sems[0] != 0 {
		t.Fatalf("pending V not drained: sem = %d", a.sems[0])
	}
	if a.blockedAt != 0 {
		t.Fatal("the drain P must not block (count was 1)")
	}
}

type setAwakeHookPort struct {
	*fakePort
	onClear func()
}

func (p *setAwakeHookPort) SetAwake(v bool) {
	p.fakePort.SetAwake(v)
	if !v && p.onClear != nil {
		p.onClear()
	}
}

func TestConsumerWaitLateReplyNoPendingWake(t *testing.T) {
	// The reply lands between the two dequeues but NO producer V'd (the
	// producer saw the flag still set). The consumer's TAS finds the
	// flag clear (it cleared it itself), so no P.
	q := newFakePort(0, 4)
	a := newFakeActor(1)
	wrapped := &setAwakeHookPort{fakePort: q, onClear: func() {
		if len(q.msgs) == 0 {
			q.msgs = append(q.msgs, Msg{Val: 5})
		}
	}}
	m := consumerWait(wrapped, a, nil)
	if m.Val != 5 {
		t.Fatalf("got %+v", m)
	}
	if a.blockedAt != 0 {
		t.Fatal("must not block")
	}
	if !q.awake {
		t.Fatal("flag must be re-set")
	}
}

func TestSpinPollStats(t *testing.T) {
	q := newFakePort(0, 4)
	a := newFakeActor(1)
	m := &metrics.Proc{}

	// Exhaustion: queue stays empty.
	spinPoll(q, a, 5, m)
	if m.SpinLoops.Load() != 1 || m.SpinFallThrus.Load() != 1 || m.SpinIters.Load() != 5 {
		t.Fatalf("exhaustion stats: loops=%d falls=%d iters=%d",
			m.SpinLoops.Load(), m.SpinFallThrus.Load(), m.SpinIters.Load())
	}
	if a.polls != 5 {
		t.Fatalf("polls = %d", a.polls)
	}

	// Early success: message appears after 2 polls.
	count := 0
	a.onBusy = func() {
		count++
		if count == 2 {
			q.msgs = append(q.msgs, Msg{})
		}
	}
	spinPoll(q, a, 5, m)
	if m.SpinLoops.Load() != 2 || m.SpinFallThrus.Load() != 1 {
		t.Fatalf("early-success stats: loops=%d falls=%d", m.SpinLoops.Load(), m.SpinFallThrus.Load())
	}
	if m.SpinIters.Load() != 7 {
		t.Fatalf("iters = %d, want 7", m.SpinIters.Load())
	}

	// Immediate success: no polls.
	q.msgs = append(q.msgs, Msg{})
	before := a.polls
	spinPoll(q, a, 5, m)
	if a.polls != before {
		t.Fatal("non-empty queue must not poll")
	}
}

func TestBusySpinUntil(t *testing.T) {
	a := newFakeActor(0)
	n := 0
	busySpinUntil(a, nil, func() bool { n++; return n >= 4 })
	if a.busyWaits != 3 {
		t.Fatalf("busyWaits = %d, want 3", a.busyWaits)
	}
}
