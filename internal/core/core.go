// Package core implements the paper's contribution: a Send/Receive/Reply
// user-level IPC interface layered over shared-memory FIFO queues, with
// four sleep/wake-up protocols:
//
//   - BSS  — Both Sides Spin (Figure 1): busy-wait on empty/full queues.
//   - BSW  — Both Sides Wait (Figure 5): counting semaphores plus a
//     per-queue awake flag, with test-and-set closing the wake-up races
//     of Figure 4.
//   - BSWY — Both Sides Wait and Yield (Figure 7): BSW plus
//     busy_wait/yield calls that suggest hand-off scheduling.
//   - BSLS — Both Sides Limited Spin (Figure 9): poll the queue up to
//     MAX_SPIN times before entering the blocking path.
//
// The algorithms are written once against two small interfaces: Port
// (one endpoint of a shared queue plus its consumer's wake state) and
// Actor (the process's system-call surface). internal/simbind binds them
// to the discrete-event kernel for the paper's experiments;
// internal/livebind binds them to real atomics and goroutines for use as
// a library.
package core

// Msg is the fixed-size message the paper's evaluation exchanges: an
// opcode identifying the request type, the reply channel on which to
// return the result, and a double-precision argument. Fixed-size messages
// permit efficient free-pool management; variable-sized payloads hang off
// a shared-memory block reference carried in Ref (Section 2.1) — a
// dedicated integer field, so float NaN canonicalization can never
// corrupt a reference the way it could when Val carried the bits.
// Ref's encoding (see SetBlock) makes the zero value mean "no payload".
//
// MsgMeta holds the runtime-owned fields — the reply route and the
// payload block reference — and exists for a load-bearing reason beyond
// taxonomy: the compiler only keeps a struct in registers if it has at
// most four fields (ssa.MaxStruct); a flat five-field Msg is forced
// into memory form, and every enqueue/dequeue copy in the spin loops
// pays loads and stores instead of register moves — measured at +20-50%
// p50 on the BSS echo path. Embedding keeps Msg at four fields (the
// nested pair is checked recursively and passes), so field promotion
// gives callers m.Client/m.Ref while the hot path stays in registers.
// Do not add a fifth field to either struct without re-measuring.
type MsgMeta struct {
	Client int32
	Ref    uint64
}

// Msg is the fixed-size control message.
type Msg struct {
	Op  int32
	Seq int32
	Val float64
	MsgMeta
}

// Operation codes used by the client/server harness.
const (
	OpEcho       int32 = iota // echo Val back to the client
	OpConnect                 // client announces itself
	OpDisconnect              // client is done
	OpWork                    // echo after simulated server-side work
)

// SemID names the counting semaphore associated with a queue's consumer.
type SemID int

// Port is one process's endpoint view of a shared one-way queue together
// with the consumer-side wake state (the awake flag and the counting
// semaphore the consumer sleeps on).
type Port interface {
	// TryEnqueue attempts to append m; it reports false if the queue
	// (i.e. the shared free pool) is full.
	TryEnqueue(m Msg) bool

	// TryDequeue attempts to remove the head message.
	TryDequeue() (Msg, bool)

	// Empty is the non-destructive poll used by the BSLS spin loop.
	Empty() bool

	// SetAwake plainly stores the consumer's awake flag (steps C.2/C.5).
	SetAwake(v bool)

	// TASAwake atomically test-and-sets the awake flag to true and
	// returns the previous value. Producers use it so that only the
	// first to find the flag clear issues the wake-up; consumers use it
	// to detect a redundant pending wake-up (the Figure 4 race fixes).
	TASAwake() bool

	// Sem identifies the counting semaphore the consumer sleeps on.
	Sem() SemID
}

// Actor is the system-call surface a protocol participant uses. The
// uniprocessor/multiprocessor split of busy_wait (yield vs delay loop)
// lives behind this interface, so protocol code ports transparently
// (Section 4.1).
type Actor interface {
	// Yield performs a yield() system call.
	Yield()

	// BusyWait is the paper's busy_wait(): yield() on a uniprocessor, a
	// fixed delay loop on a multiprocessor.
	BusyWait()

	// PollDelay is one poll_queue iteration of the BSLS spin loop:
	// yield() on a uniprocessor, a 25us busy-wait on a multiprocessor.
	PollDelay()

	// SleepSec sleeps at least s seconds (UNIX sleep semantics); used on
	// queue-full, which implies the consumer is saturated.
	SleepSec(s int)

	// P blocks on the counting semaphore if its count is zero.
	P(SemID)

	// V unblocks a waiter or increments the count; it must NOT force a
	// rescheduling decision (System V semantics).
	V(SemID)

	// Handoff suggests running the process that owns the given port
	// (the Section 6 extension). Implementations without hand-off
	// support treat it as Yield.
	Handoff(target int)
}

// Algorithm selects a sleep/wake-up protocol.
type Algorithm int

// The four protocols of the paper, plus BSA — the adaptive fifth: the
// BSLS shape with the fixed MAX_SPIN replaced by an online controller
// (see Tuner) that tunes the spin budget from observed wait feedback.
// String/AlgorithmByName/Algorithms/AlgorithmNames derive from the
// registration table in registry.go.
const (
	BSS Algorithm = iota
	BSW
	BSWY
	BSLS
	BSA
)

// DefaultMaxSpin is the MAX_SPIN the paper recommends for BSLS: "at a
// MAX_SPIN value of 20, a single client only blocks 3% of the time".
const DefaultMaxSpin = 20
