package core

import (
	"fmt"
	"testing"
)

// serverHarness wires a Server against fake ports with scripted clients.
type serverHarness struct {
	rcvQ    *fakePort
	replies []*fakePort
	a       *fakeActor
	srv     *Server
}

func newServerHarness(alg Algorithm, clients, maxSpin int) *serverHarness {
	h := &serverHarness{
		rcvQ: newFakePort(0, 64),
		a:    newFakeActor(clients + 1),
	}
	ports := make([]Port, clients)
	for i := 0; i < clients; i++ {
		p := newFakePort(SemID(i+1), 64)
		h.replies = append(h.replies, p)
		ports[i] = p
	}
	h.srv = &Server{Alg: alg, MaxSpin: maxSpin, Rcv: h.rcvQ, Replies: ports, A: h.a}
	return h
}

func (h *serverHarness) push(m Msg) { h.rcvQ.msgs = append(h.rcvQ.msgs, m) }

func TestServerReceiveReturnsQueued(t *testing.T) {
	for _, alg := range Algorithms() {
		h := newServerHarness(alg, 1, 4)
		h.push(Msg{Op: OpEcho, Seq: 7, MsgMeta: MsgMeta{Client: 0}})
		m := h.srv.Receive()
		if m.Seq != 7 {
			t.Errorf("%s: got %+v", alg, m)
		}
	}
}

func TestServerReplyWakesSleepingClient(t *testing.T) {
	h := newServerHarness(BSW, 2, 0)
	h.replies[1].awake = false
	h.srv.Reply(1, Msg{Op: OpEcho})
	if h.a.sems[2] != 1 {
		t.Fatalf("client1 sem = %d, want 1", h.a.sems[2])
	}
	if len(h.replies[1].msgs) != 1 {
		t.Fatal("reply not enqueued")
	}
	// Awake client: no V.
	h.replies[0].awake = true
	h.srv.Reply(0, Msg{Op: OpEcho})
	if h.a.sems[1] != 0 {
		t.Fatalf("client0 sem = %d, want 0", h.a.sems[1])
	}
}

func TestServerBSSReplySpinsOnFull(t *testing.T) {
	h := newServerHarness(BSS, 1, 0)
	h.replies[0].capacity = 1
	h.replies[0].msgs = append(h.replies[0].msgs, Msg{}) // full
	drained := false
	h.a.onBusy = func() {
		if !drained {
			h.replies[0].msgs = h.replies[0].msgs[:0]
			drained = true
		}
	}
	h.srv.Reply(0, Msg{Seq: 5})
	if !drained || h.replies[0].msgs[0].Seq != 5 {
		t.Fatal("BSS reply must busy-wait through queue-full")
	}
}

func TestServerBSWYYieldsOnceWhenIdle(t *testing.T) {
	h := newServerHarness(BSWY, 1, 0)
	// Empty at first; the yield "lets clients run" and they enqueue.
	h.a.onYield = func() { h.push(Msg{Seq: 3}) }
	m := h.srv.Receive()
	if m.Seq != 3 {
		t.Fatalf("got %+v", m)
	}
	if h.a.yields != 1 {
		t.Fatalf("yields = %d, want 1", h.a.yields)
	}
	if h.a.blockedAt != 0 {
		t.Fatal("should not have blocked")
	}

	// Queue non-empty: no yield at all.
	h.push(Msg{Seq: 4})
	h.srv.Receive()
	if h.a.yields != 1 {
		t.Fatalf("yields = %d after hot receive, want still 1", h.a.yields)
	}
}

func TestServerBSLSSpinsBeforeBlocking(t *testing.T) {
	h := newServerHarness(BSLS, 1, 3)
	polls := 0
	h.a.onBusy = func() {
		polls++
		if polls == 2 {
			h.push(Msg{Seq: 9})
		}
	}
	m := h.srv.Receive()
	if m.Seq != 9 || polls != 2 || h.a.blockedAt != 0 {
		t.Fatalf("m=%+v polls=%d blocked=%d", m, polls, h.a.blockedAt)
	}
}

func TestServerServeEchoLoop(t *testing.T) {
	h := newServerHarness(BSW, 2, 0)
	script := []Msg{
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 1}},
		{Op: OpEcho, Seq: 1, Val: 10, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpEcho, Seq: 1, Val: 20, MsgMeta: MsgMeta{Client: 1}},
		{Op: OpWork, Seq: 2, Val: 30, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 1}},
	}
	i := 0
	feed := func(SemID) {
		if i < len(script) {
			h.push(script[i])
			i++
		}
		h.a.sems[0]++
	}
	h.a.onP = feed
	worked := 0
	served := h.srv.Serve(func(m *Msg) { worked++; m.Val *= 2 })
	if served != 3 {
		t.Fatalf("served = %d, want 3", served)
	}
	if worked != 1 {
		t.Fatalf("work callback ran %d times, want 1", worked)
	}
	// Replies landed on the right channels: client0 got connect, echo,
	// work, disconnect; client1 got connect, echo, disconnect.
	if len(h.replies[0].msgs) != 4 || len(h.replies[1].msgs) != 3 {
		t.Fatalf("reply counts: %d, %d", len(h.replies[0].msgs), len(h.replies[1].msgs))
	}
	if h.replies[0].msgs[2].Val != 60 {
		t.Fatalf("work reply val = %v, want 60", h.replies[0].msgs[2].Val)
	}
}

func TestServerThrottleParksBeyondCap(t *testing.T) {
	const clients = 5
	h := newServerHarness(BSLS, clients, 1)
	h.srv.Throttle = 2
	h.srv.SetConnected(clients)
	// All clients are asleep; replying to each should wake only the
	// first two and park the rest.
	for i := 0; i < clients; i++ {
		h.replies[i].awake = false
		h.srv.Reply(int32(i), Msg{Op: OpEcho})
	}
	vs := 0
	for i := 0; i < clients; i++ {
		vs += h.a.sems[i+1]
	}
	if vs != 2 {
		t.Fatalf("issued %d wakes, want 2 (throttle)", vs)
	}
	if h.srv.PendingWakes() != 3 {
		t.Fatalf("parked = %d, want 3", h.srv.PendingWakes())
	}
	// All replies must still be enqueued (parking defers only the V).
	for i := 0; i < clients; i++ {
		if len(h.replies[i].msgs) != 1 {
			t.Fatalf("client %d reply missing", i)
		}
	}
}

func TestServerThrottleAdmissionPacing(t *testing.T) {
	const clients = 4
	h := newServerHarness(BSLS, clients, 1)
	h.srv.Throttle = 1
	h.srv.SetConnected(clients)
	for i := 0; i < clients; i++ {
		h.replies[i].awake = false
		h.srv.Reply(int32(i), Msg{Op: OpEcho})
	}
	if h.srv.PendingWakes() != 3 {
		t.Fatalf("parked = %d, want 3", h.srv.PendingWakes())
	}
	// Feed receives; parked clients must be admitted (FIFO) within the
	// pacing interval, and all of them within the starvation bound.
	interval := 2 * clients
	bound := 10 * interval
	h.a.onP = func(id SemID) { h.a.sems[id]++ }
	for r := 0; r < bound && h.srv.PendingWakes() > 0; r++ {
		h.push(Msg{Op: OpEcho, MsgMeta: MsgMeta{Client: 0}})
		h.srv.Receive()
	}
	if h.srv.PendingWakes() != 0 {
		t.Fatalf("starvation: %d clients still parked after %d receives", h.srv.PendingWakes(), bound)
	}
	// Admissions are FIFO: sems 2,3,4 (clients 1..3) were woken in order
	// — verify each got exactly one V.
	for i := 1; i < clients; i++ {
		if h.a.sems[i+1] != 1 {
			t.Fatalf("client %d sem = %d, want 1", i, h.a.sems[i+1])
		}
	}
}

func TestServerThrottleControlPathBypasses(t *testing.T) {
	h := newServerHarness(BSLS, 3, 1)
	h.srv.Throttle = 1
	h.srv.SetConnected(3)
	for i := 0; i < 3; i++ {
		h.replies[i].awake = false
	}
	// An echo reply is throttled: with 3 connected clients and a cap of
	// 1, the other two unparked clients already exceed the cap, so this
	// wake is parked.
	h.srv.Reply(0, Msg{Op: OpEcho})
	if h.a.sems[1] != 0 || h.srv.PendingWakes() != 1 {
		t.Fatalf("echo wake not parked: sems=%v parked=%d", h.a.sems, h.srv.PendingWakes())
	}
	// Connect and disconnect replies must wake immediately regardless.
	h.srv.Reply(1, Msg{Op: OpConnect})
	h.srv.Reply(2, Msg{Op: OpDisconnect})
	if h.a.sems[2] != 1 || h.a.sems[3] != 1 {
		t.Fatalf("control-path replies throttled: sems=%v", h.a.sems)
	}
	if h.srv.PendingWakes() != 1 {
		t.Fatalf("parked = %d, want 1 (control path must not admit)", h.srv.PendingWakes())
	}
}

func TestServerThrottleAllParkedLiveness(t *testing.T) {
	// If every connected client is parked, Receive must admit one before
	// waiting, or nothing could ever arrive.
	const clients = 2
	h := newServerHarness(BSW, clients, 0)
	h.srv.Throttle = 1
	h.srv.SetConnected(clients)
	// Park both clients: first takes the active slot, second parks...
	// with Throttle=1 and 2 connected, replying to both parks one.
	h.replies[0].awake = false
	h.replies[1].awake = false
	h.srv.Reply(0, Msg{Op: OpEcho})
	h.srv.Reply(1, Msg{Op: OpEcho})
	if h.srv.PendingWakes() != 1 {
		t.Fatalf("parked = %d, want 1", h.srv.PendingWakes())
	}
	// Park the remaining active client too by pretending it blocked
	// again after its wake: simulate by marking a new reply... instead,
	// directly verify the all-parked admission: park count == connected.
	h.srv.SetConnected(1) // only the parked client remains
	woken := make(chan SemID, 1)
	h.a.onP = func(id SemID) {
		// Receive is about to block: the parked client must have been
		// admitted by now.
		if h.srv.PendingWakes() != 0 {
			t.Error("receive blocked with every connected client parked")
		}
		h.push(Msg{Op: OpEcho, MsgMeta: MsgMeta{Client: 1}})
		h.a.sems[id]++
		select {
		case woken <- id:
		default:
		}
	}
	h.srv.Receive()
	if h.srv.PendingWakes() != 0 {
		t.Fatal("parked client never admitted")
	}
}

func TestServerUnknownAlgorithmPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h := newServerHarness(Algorithm(99), 1, 0)
	h.push(Msg{})
	h.srv.Receive()
}

func TestServerReplyRoutesToCorrectClient(t *testing.T) {
	h := newServerHarness(BSW, 3, 0)
	for i := 0; i < 3; i++ {
		h.replies[i].awake = true
		h.srv.Reply(int32(i), Msg{Op: OpEcho, Seq: int32(i * 10)})
	}
	for i := 0; i < 3; i++ {
		if len(h.replies[i].msgs) != 1 || h.replies[i].msgs[0].Seq != int32(i*10) {
			t.Fatalf("client %d: %+v", i, h.replies[i].msgs)
		}
	}
}

func TestServerServeWorkNilCallback(t *testing.T) {
	h := newServerHarness(BSW, 1, 0)
	script := []Msg{
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpWork, Val: 5, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}},
	}
	i := 0
	h.a.onP = func(id SemID) {
		if i < len(script) {
			h.push(script[i])
			i++
		}
		h.a.sems[0]++
	}
	served := h.srv.Serve(nil)
	if served != 1 {
		t.Fatalf("served = %d", served)
	}
}

func ExampleServer_Serve() {
	// A fully scripted single-client exchange (no goroutines).
	rcv := newFakePort(0, 8)
	reply := newFakePort(1, 8)
	a := newFakeActor(2)
	srv := &Server{Alg: BSW, Rcv: rcv, Replies: []Port{reply}, A: a}
	script := []Msg{
		{Op: OpConnect, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpEcho, Val: 3.14, MsgMeta: MsgMeta{Client: 0}},
		{Op: OpDisconnect, MsgMeta: MsgMeta{Client: 0}},
	}
	i := 0
	a.onP = func(id SemID) {
		if i < len(script) {
			rcv.msgs = append(rcv.msgs, script[i])
			i++
		}
		a.sems[0]++
	}
	served := srv.Serve(nil)
	fmt.Println("served:", served, "echo:", reply.msgs[1].Val)
	// Output: served: 1 echo: 3.14
}
