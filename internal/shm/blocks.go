package shm

import (
	"fmt"
	"sync/atomic"
	"unsafe"
)

// Variable-sized messages (Section 2.1): "Variable sized messages can be
// accommodated by using one of the fields of the fixed sized message to
// point to a variable sized component in shared memory." BlockPool is
// that shared-memory component store: a slab arena with ascending size
// classes, one ABA-tagged Treiber free stack per class, addressed by
// position-independent 32-bit references.
//
// Like the node pool, every control word lives at a fixed offset inside
// a flat byte region, so the same arena works over heap memory (the
// in-process default) or inside a mapped segment shared by processes
// (see SegConfig.Blocks) — refs and free-list links are offsets, never
// pointers, and there are no locks anywhere.
//
// Each slot additionally carries a lease tag: the id of the endpoint
// currently holding the block (owner+1; 0 = unleased). Tags are what
// make payload leaks recoverable — a sweeper that declares a peer dead
// walks the tags and returns every block the corpse still held
// (ReclaimOwner), and a receiver resolving a payload reference CASes
// the tag to itself (Claim), so the reclaim and the resolution race to
// a single winner instead of a double free.

// BlockRef is a position-independent reference to an allocated block:
// the size class in the high 8 bits, the slot index in the low 24.
type BlockRef = uint32

// NilBlock is the null block reference.
const NilBlock BlockRef = ^BlockRef(0)

func packBlock(class, slot int) BlockRef {
	return BlockRef(class)<<24 | BlockRef(slot)&0xFFFFFF
}

func unpackBlock(r BlockRef) (class, slot int) {
	return int(r >> 24), int(r & 0xFFFFFF)
}

// blockCtl is one size class's control block: the tagged Treiber head on
// its own cache line, then the free count and the two backpressure
// counters (allocations that found this class empty, and allocations
// this class absorbed for a smaller exhausted class) on a second line.
type blockCtl struct {
	Head      atomic.Uint64 // tag<<32 | top slot (slotNil = empty)
	_         [56]byte
	Free      atomic.Int64
	Fallbacks atomic.Int64
	Exhausts  atomic.Int64
	_         [40]byte
}

// Compile-time pin: blockCtl is part of the segment ABI.
var _ [128 - unsafe.Sizeof(blockCtl{})]byte

const slotNil = uint32(0xFFFFFFFF)

// MaxBlockClasses bounds the class count: the segment header reserves
// exactly this many geometry words for class sizes.
const MaxBlockClasses = 4

// DefaultBlockSizes are the size classes used by NewDefaultBlockPool.
var DefaultBlockSizes = []int{64, 256, 1024, 4096}

// BlockLayout is the computed region map of a slab arena: per class a
// control block, a free-list link array, a lease-tag array, and the
// slot storage, each 64-byte aligned.
type BlockLayout struct {
	Sizes []int
	Count int // slots per class
	Size  int // total bytes

	ctlOff  []int
	linkOff []int
	ownOff  []int
	dataOff []int
}

// BlockLayoutFor computes the arena layout for the given class sizes
// (ascending multiples of 8) and per-class slot count.
func BlockLayoutFor(sizes []int, countPerClass int) (BlockLayout, error) {
	if len(sizes) == 0 || len(sizes) > MaxBlockClasses {
		return BlockLayout{}, fmt.Errorf("shm: need 1..%d block size classes, got %d", MaxBlockClasses, len(sizes))
	}
	if countPerClass < 1 || countPerClass > 0xFFFFFF {
		return BlockLayout{}, fmt.Errorf("shm: block count per class out of range: %d", countPerClass)
	}
	l := BlockLayout{Sizes: append([]int(nil), sizes...), Count: countPerClass}
	prev := 0
	off := 0
	for _, size := range sizes {
		if size <= prev {
			return BlockLayout{}, fmt.Errorf("shm: block class sizes must be ascending, got %v", sizes)
		}
		if size%8 != 0 {
			return BlockLayout{}, fmt.Errorf("shm: block class size %d not a multiple of 8", size)
		}
		prev = size
		l.ctlOff = append(l.ctlOff, off)
		off += int(unsafe.Sizeof(blockCtl{}))
		l.linkOff = append(l.linkOff, off)
		off += align64(countPerClass * 4)
		l.ownOff = append(l.ownOff, off)
		off += align64(countPerClass * 4)
		l.dataOff = append(l.dataOff, off)
		off += align64(countPerClass * size)
	}
	l.Size = align64(off)
	return l, nil
}

// slabClass is the typed view of one size class's regions.
type slabClass struct {
	size  int
	count int
	ctl   *blockCtl
	next  []atomic.Uint32 // free-list links, indexed by slot
	own   []atomic.Uint32 // lease tags: owner+1, 0 = unleased
	data  []byte
}

func (c *slabClass) block(slot uint32) []byte {
	off := int(slot) * c.size
	return c.data[off : off+c.size : off+c.size]
}

func (c *slabClass) push(slot uint32) {
	for {
		h := c.ctl.Head.Load()
		tag, top := unpackHead(h)
		c.next[slot].Store(top)
		if c.ctl.Head.CompareAndSwap(h, packHead(tag+1, slot)) {
			c.ctl.Free.Add(1)
			return
		}
	}
}

func (c *slabClass) pop() (uint32, bool) {
	for {
		h := c.ctl.Head.Load()
		tag, top := unpackHead(h)
		if top == slotNil {
			return 0, false
		}
		if int(top) >= c.count {
			// A crashed or hostile peer corrupted the head: fail closed
			// rather than indexing out of the class.
			return 0, false
		}
		if c.ctl.Head.CompareAndSwap(h, packHead(tag+1, c.next[top].Load())) {
			c.ctl.Free.Add(-1)
			return top, true
		}
	}
}

// popN pops up to len(dst) slots with a single CAS (the AllocN walk:
// stale mid-walk link reads are rejected by the tagged head CAS).
func (c *slabClass) popN(dst []uint32) int {
	if len(dst) == 0 {
		return 0
	}
	for {
		h := c.ctl.Head.Load()
		tag, top := unpackHead(h)
		if top == slotNil {
			return 0
		}
		n := 0
		s := top
		for n < len(dst) && s != slotNil {
			if int(s) >= c.count {
				n = 0 // corrupted link: fail closed
				break
			}
			dst[n] = s
			n++
			s = c.next[s].Load()
		}
		if n == 0 {
			return 0
		}
		if c.ctl.Head.CompareAndSwap(h, packHead(tag+1, s)) {
			c.ctl.Free.Add(-int64(n))
			return n
		}
	}
}

// pushN splices a caller-owned chain of slots with a single CAS.
func (c *slabClass) pushN(slots []uint32) {
	if len(slots) == 0 {
		return
	}
	for i := 0; i < len(slots)-1; i++ {
		c.next[slots[i]].Store(slots[i+1])
	}
	last := slots[len(slots)-1]
	for {
		h := c.ctl.Head.Load()
		tag, top := unpackHead(h)
		c.next[last].Store(top)
		if c.ctl.Head.CompareAndSwap(h, packHead(tag+1, slots[0])) {
			c.ctl.Free.Add(int64(len(slots)))
			return
		}
	}
}

// BlockPool is the variable-sized-component store: the typed view over
// a slab arena region (heap-backed via NewBlockPool, or a window into a
// mapped segment via SegView.Blocks).
type BlockPool struct {
	classes []slabClass
	lay     BlockLayout
}

// viewBlockPool builds the typed views over an arena region. It does
// not initialise the region — mappers view an already-formatted arena.
func viewBlockPool(mem []byte, lay BlockLayout) *BlockPool {
	p := &BlockPool{lay: lay}
	for ci, size := range lay.Sizes {
		p.classes = append(p.classes, slabClass{
			size:  size,
			count: lay.Count,
			ctl:   (*blockCtl)(unsafe.Pointer(&mem[lay.ctlOff[ci]])),
			next:  unsafe.Slice((*atomic.Uint32)(unsafe.Pointer(&mem[lay.linkOff[ci]])), lay.Count),
			own:   unsafe.Slice((*atomic.Uint32)(unsafe.Pointer(&mem[lay.ownOff[ci]])), lay.Count),
			data:  mem[lay.dataOff[ci] : lay.dataOff[ci]+lay.Count*size : lay.dataOff[ci]+lay.Count*size],
		})
	}
	return p
}

// initBlocks formats a fresh arena: every class's free list threaded in
// ascending slot order, counters zeroed, tags cleared.
func (p *BlockPool) initBlocks() {
	for ci := range p.classes {
		c := &p.classes[ci]
		for i := 0; i < c.count-1; i++ {
			c.next[i].Store(uint32(i + 1))
		}
		c.next[c.count-1].Store(slotNil)
		c.ctl.Head.Store(packHead(0, 0))
		c.ctl.Free.Store(int64(c.count))
		c.ctl.Fallbacks.Store(0)
		c.ctl.Exhausts.Store(0)
		for i := range c.own {
			c.own[i].Store(0)
		}
	}
}

// NewBlockPool builds a heap-backed pool with the given class sizes
// (ascending multiples of 8) and the same slot count in each class.
func NewBlockPool(sizes []int, countPerClass int) (*BlockPool, error) {
	lay, err := BlockLayoutFor(sizes, countPerClass)
	if err != nil {
		return nil, err
	}
	raw := make([]byte, lay.Size+63)
	base := uintptr(unsafe.Pointer(&raw[0]))
	off := int((64 - base%64) % 64)
	p := viewBlockPool(raw[off:off+lay.Size], lay)
	p.initBlocks()
	return p, nil
}

// NewDefaultBlockPool builds a pool with the default size classes.
func NewDefaultBlockPool(countPerClass int) (*BlockPool, error) {
	return NewBlockPool(DefaultBlockSizes, countPerClass)
}

// Layout returns the arena's region map.
func (p *BlockPool) Layout() BlockLayout { return p.lay }

// MaxBlock returns the largest allocatable block size.
func (p *BlockPool) MaxBlock() int { return p.classes[len(p.classes)-1].size }

// Classes returns the number of size classes.
func (p *BlockPool) Classes() int { return len(p.classes) }

// ClassSize returns the block size of class ci.
func (p *BlockPool) ClassSize(ci int) int { return p.classes[ci].size }

// ClassFor returns the smallest class fitting n bytes, or -1.
func (p *BlockPool) ClassFor(n int) int {
	if n < 0 {
		return -1
	}
	for ci := range p.classes {
		if p.classes[ci].size >= n {
			return ci
		}
	}
	return -1
}

// Alloc returns a block of at least n bytes, or false if no class can
// satisfy the request (too large, or every fitting class is exhausted —
// the caller's flow control reacts exactly as it does to a full queue).
// An exhausted class records the miss in its Exhausts counter; a
// request absorbed by a larger class than its best fit records a
// Fallback on the class that served it.
func (p *BlockPool) Alloc(n int) (BlockRef, []byte, bool) {
	first := p.ClassFor(n)
	if first < 0 {
		return NilBlock, nil, false
	}
	for ci := first; ci < len(p.classes); ci++ {
		c := &p.classes[ci]
		if slot, ok := c.pop(); ok {
			if ci > first {
				c.ctl.Fallbacks.Add(1)
			}
			return packBlock(ci, int(slot)), c.block(slot), true
		}
		c.ctl.Exhausts.Add(1)
	}
	return NilBlock, nil, false
}

// AllocClassN pops up to len(dst) blocks from one class with a single
// CAS, returning how many it took — the batching primitive block caches
// refill through (mirrors Pool.AllocN).
func (p *BlockPool) AllocClassN(class int, dst []BlockRef) int {
	if class < 0 || class >= len(p.classes) {
		return 0
	}
	c := &p.classes[class]
	tmp := make([]uint32, len(dst))
	n := c.popN(tmp)
	for i := 0; i < n; i++ {
		dst[i] = packBlock(class, int(tmp[i]))
	}
	return n
}

// FreeClassN returns a batch of same-class blocks with a single CAS,
// clearing their lease tags (mirrors Pool.FreeN). Refs from different
// classes are rejected.
func (p *BlockPool) FreeClassN(refs []BlockRef) error {
	if len(refs) == 0 {
		return nil
	}
	class, _ := unpackBlock(refs[0])
	if class >= len(p.classes) {
		return fmt.Errorf("shm: bad block class %d", class)
	}
	c := &p.classes[class]
	slots := make([]uint32, len(refs))
	for i, r := range refs {
		cl, slot := unpackBlock(r)
		if cl != class || slot >= c.count {
			return fmt.Errorf("shm: FreeClassN ref %#x not in class %d", r, class)
		}
		slots[i] = uint32(slot)
	}
	for _, s := range slots {
		c.own[s].Store(0)
	}
	c.pushN(slots)
	return nil
}

func (p *BlockPool) class(r BlockRef) (*slabClass, int, error) {
	class, slot := unpackBlock(r)
	if class >= len(p.classes) {
		return nil, 0, fmt.Errorf("shm: bad block class %d", class)
	}
	c := &p.classes[class]
	if slot >= c.count {
		return nil, 0, fmt.Errorf("shm: bad block slot %d (class %d)", slot, class)
	}
	return c, slot, nil
}

// Get returns the storage of an allocated block.
func (p *BlockPool) Get(r BlockRef) ([]byte, error) {
	c, slot, err := p.class(r)
	if err != nil {
		return nil, err
	}
	return c.block(uint32(slot)), nil
}

// Free returns a block to its class, clearing its lease tag.
func (p *BlockPool) Free(r BlockRef) error {
	c, slot, err := p.class(r)
	if err != nil {
		return err
	}
	c.own[slot].Store(0)
	c.push(uint32(slot))
	return nil
}

// Lease tags a block as held by owner (the allocator's endpoint id).
// The sweeper's ReclaimOwner uses the tag to return a dead endpoint's
// blocks; Claim transfers it to a message's receiver.
func (p *BlockPool) Lease(r BlockRef, owner uint32) error {
	c, slot, err := p.class(r)
	if err != nil {
		return err
	}
	c.own[slot].Store(owner + 1)
	return nil
}

// Claim transfers a block's lease to owner. It succeeds only while the
// block is leased to someone — a cleared tag means a sweeper already
// reclaimed it (the previous holder died), and the caller must treat
// the payload as lost rather than use (or free) the recycled slot.
func (p *BlockPool) Claim(r BlockRef, owner uint32) bool {
	c, slot, err := p.class(r)
	if err != nil {
		return false
	}
	for {
		cur := c.own[slot].Load()
		if cur == 0 {
			return false
		}
		if c.own[slot].CompareAndSwap(cur, owner+1) {
			return true
		}
	}
}

// Owner returns a block's lease tag (owner id, leased=true) for audits.
func (p *BlockPool) Owner(r BlockRef) (uint32, bool) {
	c, slot, err := p.class(r)
	if err != nil {
		return 0, false
	}
	v := c.own[slot].Load()
	if v == 0 {
		return 0, false
	}
	return v - 1, true
}

// ReclaimOwner returns every block still leased to owner — the
// sweeper's dead-peer pass. The tag CAS makes it race-free against a
// surviving receiver Claiming the same block: exactly one side wins.
func (p *BlockPool) ReclaimOwner(owner uint32) int {
	n := 0
	for ci := range p.classes {
		c := &p.classes[ci]
		for slot := range c.own {
			if c.own[slot].CompareAndSwap(owner+1, 0) {
				c.push(uint32(slot))
				n++
			}
		}
	}
	return n
}

// ReclaimAll audits and repairs the arena after every peer is gone (the
// post-mortem doctrine — exclusive access required): each class's free
// list is walked, every unreachable slot is returned, tags are cleared,
// and the free counters are restored to exact values. It returns the
// number of orphaned blocks recovered.
func (p *BlockPool) ReclaimAll() (int, error) {
	orphans := 0
	for ci := range p.classes {
		c := &p.classes[ci]
		seen := make([]bool, c.count)
		_, top := unpackHead(c.ctl.Head.Load())
		for s := top; s != slotNil; s = c.next[s].Load() {
			if int(s) >= c.count || seen[s] {
				return orphans, fmt.Errorf("shm: block class %d free list cycle or wild slot at %d", ci, s)
			}
			seen[s] = true
		}
		for slot := 0; slot < c.count; slot++ {
			if !seen[slot] {
				c.own[slot].Store(0)
				c.push(uint32(slot))
				orphans++
			}
		}
		c.ctl.Free.Store(int64(c.count))
	}
	return orphans, nil
}

// BlockClassStats is one class's snapshot for MetricsV2/Prometheus.
type BlockClassStats struct {
	Size      int   // block size in bytes
	Count     int   // total slots
	Free      int64 // free slots (approximate under concurrency)
	Fallbacks int64 // allocs this class absorbed for a smaller exhausted class
	Exhausts  int64 // allocs that found this class empty
}

// Stats snapshots every class's counters.
func (p *BlockPool) Stats() []BlockClassStats {
	out := make([]BlockClassStats, len(p.classes))
	for ci := range p.classes {
		c := &p.classes[ci]
		out[ci] = BlockClassStats{
			Size:      c.size,
			Count:     c.count,
			Free:      c.ctl.Free.Load(),
			Fallbacks: c.ctl.Fallbacks.Load(),
			Exhausts:  c.ctl.Exhausts.Load(),
		}
	}
	return out
}

// Capacity returns the total slot count across classes.
func (p *BlockPool) Capacity() int { return len(p.classes) * p.lay.Count }

// TotalFree returns the approximate total free slots across classes.
func (p *BlockPool) TotalFree() int64 {
	var n int64
	for ci := range p.classes {
		n += p.classes[ci].ctl.Free.Load()
	}
	return n
}

// FreeCount returns the free slots in the class holding blocks of at
// least n bytes (diagnostics).
func (p *BlockPool) FreeCount(n int) int64 {
	for ci := range p.classes {
		if p.classes[ci].size >= n {
			return p.classes[ci].ctl.Free.Load()
		}
	}
	return 0
}
