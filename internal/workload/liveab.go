package workload

import (
	"fmt"
	"io"
	"sort"
)

// Interleaved A/B overhead measurement: the same benchmark cell runs
// alternately with observability disabled and enabled, and the two
// populations' medians are compared. Interleaving (A,B,A,B,...) rather
// than batching (A,A,...,B,B,...) spreads thermal drift, GC phase and
// scheduler noise evenly over both arms, so the delta isolates the
// instrumentation cost: the nil-check on the disabled arm, the clock
// reads and histogram stores on the enabled one.

// LiveOverheadResult reports one A/B comparison.
type LiveOverheadResult struct {
	Reps         int       `json:"reps"`
	BaseMedianNs float64   `json:"base_median_ns"` // observability disabled
	ObsMedianNs  float64   `json:"obs_median_ns"`  // observability enabled
	DeltaPct     float64   `json:"delta_pct"`      // (obs-base)/base * 100
	BaseNs       []float64 `json:"base_ns"`        // per-rep ns/rtt, disabled
	ObsNs        []float64 `json:"obs_ns"`         // per-rep ns/rtt, enabled
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// RunLiveOverheadAB measures the observability hook overhead for one
// cell: reps interleaved pairs of (disabled, enabled) runs of cfg, with
// the medians compared. cfg.Observe is overridden per arm. progress,
// when non-nil, receives one line per completed pair.
func RunLiveOverheadAB(cfg LiveConfig, reps int, progress io.Writer) (LiveOverheadResult, error) {
	if reps < 1 {
		reps = 5
	}
	out := LiveOverheadResult{Reps: reps}
	for r := 0; r < reps; r++ {
		cfg.Observe = false
		base, err := RunLive(cfg)
		if err != nil {
			return out, fmt.Errorf("A/B rep %d (disabled): %w", r, err)
		}
		cfg.Observe = true
		obsRun, err := RunLive(cfg)
		if err != nil {
			return out, fmt.Errorf("A/B rep %d (enabled): %w", r, err)
		}
		out.BaseNs = append(out.BaseNs, base.RTTMicros*1e3)
		out.ObsNs = append(out.ObsNs, obsRun.RTTMicros*1e3)
		if progress != nil {
			fmt.Fprintf(progress, "rep %d: base %8.0f ns/rtt   obs %8.0f ns/rtt\n",
				r, base.RTTMicros*1e3, obsRun.RTTMicros*1e3)
		}
	}
	out.BaseMedianNs = median(out.BaseNs)
	out.ObsMedianNs = median(out.ObsNs)
	if out.BaseMedianNs > 0 {
		out.DeltaPct = (out.ObsMedianNs - out.BaseMedianNs) / out.BaseMedianNs * 100
	}
	return out, nil
}
