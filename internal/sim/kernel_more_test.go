package sim_test

import (
	"strings"
	"testing"
	"testing/quick"

	"ulipc/internal/machine"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
)

// TestQuantumPreemption verifies involuntary context switches: a
// CPU-bound process must be preempted at quantum expiry when another
// process is ready.
func TestQuantumPreemption(t *testing.T) {
	m := machine.SGIIndy()
	m.Quantum = 1 * sim.Millisecond
	ms := metrics.NewSet()
	pol, _ := sched.New(sched.PolicyLinuxMod) // FIFO round-robin: clean semantics
	k, err := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: ms})
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			p.Step(100 * sim.Microsecond) // 5ms total, 5 quanta
		}
	}
	k.Spawn("a", 0, body)
	k.Spawn("b", 0, body)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	a, _ := ms.Find("a")
	if a.InvoluntaryCS < 3 {
		t.Fatalf("a: involuntary switches = %d, want >= 3 (5ms of work, 1ms quantum)", a.InvoluntaryCS)
	}
	if a.VoluntaryCS != 0 {
		t.Fatalf("a: voluntary switches = %d, want 0 (never blocks)", a.VoluntaryCS)
	}
}

// TestNoPreemptionWithoutCompetitor: quantum expiry with an empty run
// queue must not count a switch.
func TestNoPreemptionWithoutCompetitor(t *testing.T) {
	m := machine.SGIIndy()
	m.Quantum = 1 * sim.Millisecond
	ms := metrics.NewSet()
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: ms})
	k.Spawn("solo", 0, func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Step(100 * sim.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	solo, _ := ms.Find("solo")
	if solo.SwitchesTotal() != 0 {
		t.Fatalf("solo process switched %d times", solo.SwitchesTotal())
	}
}

// TestCPUTimeAccounting: virtual CPU time must equal the sum of step
// costs plus syscall costs.
func TestCPUTimeAccounting(t *testing.T) {
	m := machine.SGIIndy()
	ms := metrics.NewSet()
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: ms})
	k.Spawn("w", 0, func(p *sim.Proc) {
		p.Step(10 * sim.Microsecond)
		p.Yield() // no switch: solo process
		p.Step(5 * sim.Microsecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	w, _ := ms.Find("w")
	want := int64(15*sim.Microsecond + m.YieldCost)
	if w.CPUTimeNS != want {
		t.Fatalf("cpu time = %d, want %d", w.CPUTimeNS, want)
	}
}

// TestSemaphoreWaitersFIFO: semaphore waiters are released in arrival
// order.
func TestSemaphoreWaitersFIFO(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	sem := k.NewSem(0)
	var order []string
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		k.Spawn(name, 0, func(p *sim.Proc) {
			p.SemP(sem)
			order = append(order, name)
		})
	}
	k.Spawn("waker", 0, func(p *sim.Proc) {
		p.Step(10 * sim.Microsecond) // let the waiters queue up
		for i := 0; i < 3; i++ {
			p.SemV(sem)
			p.Step(50 * sim.Microsecond) // let each one run
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "w0,w1,w2" {
		t.Fatalf("order = %v", order)
	}
}

// TestVDoesNotPreempt verifies the paper's key System V behaviour: a V
// readies the waiter but the caller keeps the CPU.
func TestVDoesNotPreempt(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	sem := k.NewSem(0)
	var order []string
	k.Spawn("sleeper", 0, func(p *sim.Proc) {
		p.SemP(sem)
		order = append(order, "sleeper-woke")
	})
	k.Spawn("waker", 0, func(p *sim.Proc) {
		p.Step(time10us())
		p.SemV(sem)
		order = append(order, "waker-after-V")
		p.Step(time10us())
		order = append(order, "waker-still-running")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"waker-after-V", "waker-still-running", "sleeper-woke"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v (V must not force a reschedule)", order, want)
		}
	}
}

func time10us() sim.Time { return 10 * sim.Microsecond }

// TestIdleCPUPicksUpWakeup: on a multiprocessor a wakeup fills an idle
// CPU immediately.
func TestIdleCPUPicksUpWakeup(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIChallenge8(), Sched: pol})
	sem := k.NewSem(0)
	var wakeAt, wokeAt sim.Time
	k.Spawn("sleeper", 0, func(p *sim.Proc) {
		p.SemP(sem)
		wokeAt = p.Now()
	})
	k.Spawn("waker", 0, func(p *sim.Proc) {
		p.Step(100 * sim.Microsecond)
		wakeAt = p.Now()
		p.SemV(sem)
		p.Step(500 * sim.Microsecond) // keep this CPU busy
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// The sleeper must have run on another CPU well before the waker's
	// 500us tail finished.
	if wokeAt > wakeAt+100*sim.Microsecond {
		t.Fatalf("sleeper woke at %d, wake at %d: idle CPU not used", wokeAt, wakeAt)
	}
}

// TestSleepFloor: SleepSec honours the machine's one-second floor.
func TestSleepFloor(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol, MaxTime: 10 * sim.Second})
	var woke sim.Time
	k.Spawn("s", 0, func(p *sim.Proc) {
		p.SleepSec(0) // floor lifts this to >= 1s
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke < sim.Second {
		t.Fatalf("woke at %d, want >= 1s (UNIX sleep floor)", woke)
	}
}

// TestMaxTimeAborts: runaway simulations terminate with an error.
func TestMaxTimeAborts(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol, MaxTime: 1 * sim.Millisecond})
	k.Spawn("spinner", 0, func(p *sim.Proc) {
		for {
			p.Step(100 * sim.Microsecond)
		}
	})
	if err := k.Run(); err == nil {
		t.Fatal("expected MaxTime error")
	}
}

// TestSpawnAfterRunPanics guards the API contract.
func TestSpawnAfterRunPanics(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	k.Spawn("w", 0, func(p *sim.Proc) { p.Step(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.Spawn("late", 0, func(p *sim.Proc) {})
}

// TestRunTwiceErrors guards the API contract.
func TestRunTwiceErrors(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	k.Spawn("w", 0, func(p *sim.Proc) {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestHandoffToBlockedFallsBack: handing off to a blocked process
// behaves like yield instead of wedging.
func TestHandoffToBlockedFallsBack(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	sem := k.NewSem(0)
	var blocked *sim.Proc
	blocked = k.Spawn("blocked", 0, func(p *sim.Proc) {
		p.SemP(sem)
	})
	k.Spawn("caller", 0, func(p *sim.Proc) {
		p.Step(10 * sim.Microsecond) // let "blocked" block first
		p.Handoff(blocked.ID())      // target not ready: acts as yield
		p.SemV(sem)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestHandoffToUnknownPID: bad pids degrade to yield.
func TestHandoffToUnknownPID(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	k.Spawn("caller", 0, func(p *sim.Proc) {
		p.Handoff(999)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceEventsEmitted: the trace hook sees switches and blocks.
func TestTraceEventsEmitted(t *testing.T) {
	var events []string
	trace := func(tm sim.Time, cpu int, proc string, what, detail string) {
		events = append(events, what)
	}
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol, Trace: trace})
	sem := k.NewSem(0)
	k.Spawn("a", 0, func(p *sim.Proc) {
		p.SemP(sem)
	})
	k.Spawn("b", 0, func(p *sim.Proc) {
		p.Step(10 * sim.Microsecond)
		p.SemV(sem)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(events, ",")
	for _, want := range []string{"block", "wake", "switch-in", "exit"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q: %v", want, events)
		}
	}
}

// TestBarrierReusable: a barrier can be reused for successive phases.
func TestBarrierReusable(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	b := k.NewBarrier(2)
	var phases [2]int
	for i := 0; i < 2; i++ {
		k.Spawn("w", 0, func(p *sim.Proc) {
			p.Barrier(b)
			phases[0]++
			p.Barrier(b)
			phases[1]++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if phases[0] != 2 || phases[1] != 2 {
		t.Fatalf("phases = %v", phases)
	}
}

// TestNegativeStepPanics guards against cost-model bugs.
func TestNegativeStepPanics(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	k.Spawn("bad", 0, func(p *sim.Proc) {
		p.Step(-5)
	})
	if err := k.Run(); err == nil {
		t.Fatal("negative step must surface as an error")
	}
}

// TestConfigValidation covers kernel construction errors.
func TestConfigValidation(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	if _, err := sim.New(sim.Config{Sched: pol}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := sim.New(sim.Config{Machine: machine.SGIIndy()}); err == nil {
		t.Error("nil scheduler accepted")
	}
	bad := machine.SGIIndy()
	bad.Quantum = 0
	if _, err := sim.New(sim.Config{Machine: bad, Sched: pol}); err == nil {
		t.Error("invalid machine accepted")
	}
}

// TestProcAccessors covers the small introspection surface.
func TestProcAccessors(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	p := k.Spawn("w", 3, func(p *sim.Proc) {})
	if p.ID() != 0 || p.Name() != "w" || p.BasePrio != 3 {
		t.Fatalf("accessors: id=%d name=%q prio=%d", p.ID(), p.Name(), p.BasePrio)
	}
	if k.ProcByID(0) != p || k.ProcByID(5) != nil || k.ProcByID(-1) != nil {
		t.Fatal("ProcByID misbehaves")
	}
	if len(k.Procs()) != 1 {
		t.Fatal("Procs()")
	}
	if p.String() == "" || p.State().String() == "" {
		t.Fatal("String()")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.State() != sim.StateDead {
		t.Fatalf("state = %v", p.State())
	}
}

// TestMsgRcvDeliversInOrder: message queues are FIFO across blocking
// receivers.
func TestMsgRcvDeliversInOrder(t *testing.T) {
	pol, _ := sched.New(sched.PolicyDegrading)
	k, _ := sim.New(sim.Config{Machine: machine.SGIIndy(), Sched: pol})
	q := k.NewMsgQueue(8)
	var got []any
	k.Spawn("rcv", 0, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			got = append(got, p.MsgRcv(q))
		}
	})
	k.Spawn("snd", 0, func(p *sim.Proc) {
		for i := 0; i < 4; i++ {
			p.MsgSnd(q, i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got = %v", got)
		}
	}
}

// TestQuickCPUAccountingInvariant drives random workloads and checks the
// fundamental accounting invariant: total charged CPU time can never
// exceed elapsed virtual time x CPUs.
func TestQuickCPUAccountingInvariant(t *testing.T) {
	check := func(nProcs, steps, costSel uint8, mp bool) bool {
		m := machine.SGIIndy()
		if mp {
			m = machine.SGIChallenge8()
		}
		ms := metrics.NewSet()
		pol, _ := sched.New(sched.PolicyDegrading)
		k, err := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: ms})
		if err != nil {
			return false
		}
		procs := 1 + int(nProcs)%4
		nSteps := 1 + int(steps)%20
		cost := sim.Time(1+int(costSel)%50) * sim.Microsecond
		sem := k.NewSem(0)
		for i := 0; i < procs; i++ {
			i := i
			k.Spawn("w", 0, func(p *sim.Proc) {
				for j := 0; j < nSteps; j++ {
					p.Step(cost)
					if i%2 == 0 {
						p.SemV(sem)
					} else {
						p.Yield()
					}
				}
				// Drain own Vs so nothing dangles.
				for j := 0; i%2 == 0 && j < nSteps; j++ {
					p.SemP(sem)
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		total := ms.Total().CPUTimeNS
		budget := int64(k.Now()) * int64(m.CPUs)
		return total <= budget
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
