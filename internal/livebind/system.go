package livebind

import (
	"fmt"
	"sync"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
	"ulipc/internal/shm"
)

// Options configures a live IPC system (one server, n client slots).
type Options struct {
	Alg       core.Algorithm
	MaxSpin   int        // BSLS MAX_SPIN (core.DefaultMaxSpin if zero)
	Clients   int        // number of client slots (reply queues)
	QueueCap  int        // per-queue capacity; default 64
	QueueKind queue.Kind // queue implementation; default two-lock
	SpinIters int        // >0: multiprocessor busy_wait flavour
	Throttle  int        // server wake throttle (0 = unlimited)

	// SleepScale compresses the queue-full sleep(1); 0 keeps the paper's
	// full-second UNIX semantics.
	SleepScale time.Duration

	// BlockSlots, when positive, attaches a shared block pool for
	// variable-sized message components (Section 2.1), with that many
	// slots per size class.
	BlockSlots int

	// Duplex additionally wires a client->server queue per client so
	// the thread-per-client architecture (DuplexPair) can be used.
	Duplex bool

	Metrics *metrics.Set // optional; created if nil
}

// System wires a server and its clients over live channels. It is the
// top-level entry point of the library: create a System, run Server()
// in its own goroutine, and issue requests through the Client handles.
type System struct {
	opts    Options
	recv    *Channel
	replies []*Channel
	c2s     []*Channel // per-client request channels (Duplex only)
	sems    []*Semaphore
	blocks  *shm.BlockPool
	ms      *metrics.Set

	connMu sync.Mutex
	conns  connPool
}

// NewSystem builds the shared state for one server and opts.Clients
// clients.
func NewSystem(opts Options) (*System, error) {
	if opts.Clients < 1 {
		return nil, fmt.Errorf("livebind: need at least 1 client, got %d", opts.Clients)
	}
	if opts.QueueCap <= 0 {
		opts.QueueCap = 64
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewSet()
	}
	s := &System{opts: opts, ms: opts.Metrics}
	var err error
	if s.recv, err = NewChannel(opts.QueueKind, opts.QueueCap); err != nil {
		return nil, err
	}
	s.addSem(s.recv)
	for i := 0; i < opts.Clients; i++ {
		ch, err := NewChannel(opts.QueueKind, opts.QueueCap)
		if err != nil {
			return nil, err
		}
		s.addSem(ch)
		s.replies = append(s.replies, ch)
	}
	if opts.Duplex {
		for i := 0; i < opts.Clients; i++ {
			ch, err := NewChannel(opts.QueueKind, opts.QueueCap)
			if err != nil {
				return nil, err
			}
			s.addSem(ch)
			s.c2s = append(s.c2s, ch)
		}
	}
	if opts.BlockSlots > 0 {
		pool, err := shm.NewDefaultBlockPool(opts.BlockSlots)
		if err != nil {
			return nil, err
		}
		s.blocks = pool
	}
	return s, nil
}

// Blocks returns the shared block pool for variable-sized message
// components, or nil if Options.BlockSlots was zero.
func (s *System) Blocks() *shm.BlockPool { return s.blocks }

// DuplexPair returns the two endpoints of client i's full-duplex virtual
// connection — the thread-per-client architecture of Section 2.1. The
// handler is meant to run on its own goroutine (the "server thread").
// Requires Options.Duplex.
func (s *System) DuplexPair(i int) (*core.DuplexClient, *core.DuplexHandler, error) {
	if !s.opts.Duplex {
		return nil, nil, fmt.Errorf("livebind: system built without Options.Duplex")
	}
	if i < 0 || i >= len(s.c2s) {
		return nil, nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.c2s))
	}
	ca := s.newActor(fmt.Sprintf("client%d", i))
	cl := &core.DuplexClient{
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Snd:     NewPort(s.c2s[i]),
		Rcv:     NewPort(s.replies[i]),
		A:       ca,
		M:       ca.M,
	}
	ha := s.newActor(fmt.Sprintf("server%d", i))
	h := &core.DuplexHandler{
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Rcv:     NewPort(s.c2s[i]),
		Snd:     NewPort(s.replies[i]),
		A:       ha,
		M:       ha.M,
	}
	return cl, h, nil
}

func (s *System) addSem(c *Channel) {
	c.id = core.SemID(len(s.sems))
	s.sems = append(s.sems, c.sem)
}

// Metrics returns the system's metrics set.
func (s *System) Metrics() *metrics.Set { return s.ms }

// ReceiveChannel exposes the server receive channel (diagnostics).
func (s *System) ReceiveChannel() *Channel { return s.recv }

// ReplyChannel exposes a client's reply channel (diagnostics).
func (s *System) ReplyChannel(i int) *Channel { return s.replies[i] }

func (s *System) newActor(name string) *Actor {
	return &Actor{
		sems:       s.sems,
		SpinIters:  s.opts.SpinIters,
		SleepScale: s.opts.SleepScale,
		M:          s.ms.NewProc(name),
	}
}

// WorkerPool builds a pool of n server workers sharing the receive
// queue (the "multiple server threads" of Section 2.1, using the
// model-checked counted-waiters wake discipline) plus the matching
// client constructor. Run each worker's Serve on its own goroutine and
// issue requests through PoolClient handles.
func (s *System) WorkerPool(n int) ([]*core.PoolWorker, error) {
	if n < 1 {
		return nil, fmt.Errorf("livebind: worker pool needs >= 1 worker, got %d", n)
	}
	coord := &core.PoolCoordinator{Workers: n}
	workers := make([]*core.PoolWorker, n)
	for w := 0; w < n; w++ {
		a := s.newActor(fmt.Sprintf("server%d", w))
		replies := make([]core.Port, len(s.replies))
		for i, ch := range s.replies {
			replies[i] = NewPort(ch)
		}
		workers[w] = &core.PoolWorker{
			Alg:     s.opts.Alg,
			MaxSpin: s.opts.MaxSpin,
			Rcv:     NewPoolPort(s.recv),
			Replies: replies,
			A:       a,
			C:       coord,
			M:       a.M,
		}
	}
	return workers, nil
}

// PoolClient builds the client handle for slot i against a worker pool
// built with WorkerPool.
func (s *System) PoolClient(i int) (*core.PoolClient, error) {
	if i < 0 || i >= len(s.replies) {
		return nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.replies))
	}
	a := s.newActor(fmt.Sprintf("client%d", i))
	return &core.PoolClient{
		ID:      int32(i),
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Srv:     NewPoolPort(s.recv),
		Rcv:     NewPort(s.replies[i]),
		A:       a,
		M:       a.M,
	}, nil
}

// Server builds the server-side handle. Run its Serve loop (or drive
// Receive/Reply directly) on a dedicated goroutine.
func (s *System) Server() *core.Server {
	a := s.newActor("server")
	replies := make([]core.Port, len(s.replies))
	for i, ch := range s.replies {
		replies[i] = NewPort(ch)
	}
	return &core.Server{
		Alg:      s.opts.Alg,
		MaxSpin:  s.opts.MaxSpin,
		Rcv:      NewPort(s.recv),
		Replies:  replies,
		A:        a,
		M:        a.M,
		Throttle: s.opts.Throttle,
	}
}

// Client builds the handle for client slot i. Each handle is owned by a
// single goroutine.
func (s *System) Client(i int) (*core.Client, error) {
	if i < 0 || i >= len(s.replies) {
		return nil, fmt.Errorf("livebind: client index %d out of range [0,%d)", i, len(s.replies))
	}
	a := s.newActor(fmt.Sprintf("client%d", i))
	return &core.Client{
		ID:      int32(i),
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Srv:     NewPort(s.recv),
		Rcv:     NewPort(s.replies[i]),
		A:       a,
		M:       a.M,
	}, nil
}
