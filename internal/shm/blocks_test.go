package shm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestBlockPoolValidation(t *testing.T) {
	if _, err := NewBlockPool(nil, 4); err == nil {
		t.Error("empty classes accepted")
	}
	if _, err := NewBlockPool([]int{64, 32}, 4); err == nil {
		t.Error("descending classes accepted")
	}
	if _, err := NewBlockPool([]int{64, 64}, 4); err == nil {
		t.Error("duplicate classes accepted")
	}
	if _, err := NewBlockPool([]int{64}, 0); err == nil {
		t.Error("zero count accepted")
	}
}

func TestBlockAllocPicksSmallestClass(t *testing.T) {
	p, err := NewBlockPool([]int{64, 256, 1024}, 2)
	if err != nil {
		t.Fatal(err)
	}
	ref, buf, ok := p.Alloc(100)
	if !ok {
		t.Fatal("alloc failed")
	}
	if len(buf) != 256 {
		t.Fatalf("got a %d-byte block, want the 256 class", len(buf))
	}
	got, err := p.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &buf[0] {
		t.Fatal("Get returned different storage")
	}
	if err := p.Free(ref); err != nil {
		t.Fatal(err)
	}
}

func TestBlockAllocTooLarge(t *testing.T) {
	p, _ := NewDefaultBlockPool(2)
	if _, _, ok := p.Alloc(p.MaxBlock() + 1); ok {
		t.Fatal("oversized alloc succeeded")
	}
	if _, _, ok := p.Alloc(-1); ok {
		t.Fatal("negative alloc succeeded")
	}
}

func TestBlockExhaustionFallsToLargerClass(t *testing.T) {
	p, err := NewBlockPool([]int{64, 256}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r1, b1, ok := p.Alloc(10)
	if !ok || len(b1) != 64 {
		t.Fatalf("first alloc: %v %d", ok, len(b1))
	}
	// The 64 class is exhausted: the request spills into the 256 class.
	r2, b2, ok := p.Alloc(10)
	if !ok || len(b2) != 256 {
		t.Fatalf("spill alloc: %v %d", ok, len(b2))
	}
	if _, _, ok := p.Alloc(10); ok {
		t.Fatal("alloc succeeded with every class exhausted")
	}
	p.Free(r1)
	p.Free(r2)
	if p.FreeCount(10) != 1 || p.FreeCount(100) != 1 {
		t.Fatalf("free counts: %d %d", p.FreeCount(10), p.FreeCount(100))
	}
}

func TestBlockDataIsolation(t *testing.T) {
	p, _ := NewBlockPool([]int{16}, 4)
	refs := make([]BlockRef, 4)
	for i := range refs {
		ref, buf, ok := p.Alloc(16)
		if !ok {
			t.Fatal("alloc failed")
		}
		refs[i] = ref
		for j := range buf {
			buf[j] = byte(i)
		}
	}
	for i, ref := range refs {
		buf, err := p.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf, bytes.Repeat([]byte{byte(i)}, 16)) {
			t.Fatalf("block %d corrupted: %v", i, buf)
		}
	}
}

func TestBlockBadRefs(t *testing.T) {
	p, _ := NewDefaultBlockPool(2)
	if _, err := p.Get(packBlock(200, 0)); err == nil {
		t.Error("bad class accepted by Get")
	}
	if _, err := p.Get(packBlock(0, 99)); err == nil {
		t.Error("bad slot accepted by Get")
	}
	if err := p.Free(packBlock(200, 0)); err == nil {
		t.Error("bad class accepted by Free")
	}
	if err := p.Free(packBlock(0, 99)); err == nil {
		t.Error("bad slot accepted by Free")
	}
}

func TestBlockRefPacking(t *testing.T) {
	check := func(class uint8, slot uint32) bool {
		s := int(slot & 0xFFFFFF)
		c, g := unpackBlock(packBlock(int(class), s))
		return c == int(class) && g == s
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBlockConcurrentStress(t *testing.T) {
	p, err := NewBlockPool([]int{32}, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				ref, buf, ok := p.Alloc(32)
				if !ok {
					continue
				}
				buf[0] = byte(g)
				if buf[0] != byte(g) {
					t.Errorf("lost write")
				}
				if err := p.Free(ref); err != nil {
					t.Errorf("free: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if p.FreeCount(32) != 64 {
		t.Fatalf("free count = %d, want 64", p.FreeCount(32))
	}
}
