package livebind

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/queue"
)

// Server groups: N server shards, each owning one SPSC request lane
// per client, with client-side shard selection and bounded work
// stealing. The topology is a full mesh of SPSC rings — request lane
// req[s][i] (client i -> shard s) and reply lane rep[s][i] (shard s ->
// client i) — so every ring keeps the provable single-producer/
// single-consumer contract of PR 1 even though any client can reach
// any shard and a stealing shard can answer another shard's clients
// (a thief replies through its OWN rep lane to the client).
//
// Wake state is fused per consumer, not per ring: shard s sleeps on
// one semaphore/awake flag spanning all its request lanes (its Channel
// wraps a queue.Lanes fan-in), and client i sleeps on one spanning all
// its reply lanes. Producers therefore run the unmodified Figure 4
// protocol against the consumer's fused channel; which ring carries
// the payload is invisible to the wake accounting. DESIGN.md §10
// walks the token conservation argument, including the steal residue
// re-wake.

// ShardView is the read-only load/liveness view a ShardPicker decides
// from. Depths are racy snapshots (like queue.SPSC.Len).
type ShardView interface {
	// Shards returns the group size.
	Shards() int
	// Depth returns the total queued requests across shard s's lanes.
	Depth(s int) int
	// Alive reports whether shard s has not been declared dead by the
	// recovery sweeper.
	Alive(s int) bool
}

// ShardPicker selects the destination shard for a client's request.
// Pick receives the client id, the client's previous pick (-1 before
// the first), and the load view; it runs on the client's goroutine, so
// implementations shared across clients must be stateless or
// synchronised. Sticky pickers pin a client to one shard: the system
// then surfaces ErrPeerDead on new sends when that shard dies (the
// client's traffic has nowhere else to go), while non-sticky pickers
// simply route subsequent requests around the dead shard.
type ShardPicker interface {
	Pick(client int32, last int, v ShardView) int
	Sticky() bool
}

// PickHash pins each client to shard (client mod shards) — the
// stable, stateless default. Deliberately ignores liveness: a pinned
// client keeps addressing its home shard after a shard death so the
// failure surfaces as ErrPeerDead instead of silently migrating.
type PickHash struct{}

// Pick implements ShardPicker.
func (PickHash) Pick(client int32, _ int, v ShardView) int {
	return int(client) % v.Shards()
}

// Sticky implements ShardPicker.
func (PickHash) Sticky() bool { return true }

// PickAffinity picks the least-loaded live shard on a client's first
// request and stays there for the connection's lifetime — load-aware
// placement with hash-like cache affinity afterwards.
type PickAffinity struct{}

// Pick implements ShardPicker.
func (PickAffinity) Pick(client int32, last int, v ShardView) int {
	if last >= 0 {
		return last
	}
	best, bd := -1, 0
	for s := 0; s < v.Shards(); s++ {
		if !v.Alive(s) {
			continue
		}
		if d := v.Depth(s); best < 0 || d < bd {
			best, bd = s, d
		}
	}
	if best < 0 {
		return int(client) % v.Shards()
	}
	return best
}

// Sticky implements ShardPicker.
func (PickAffinity) Sticky() bool { return true }

// PickLeastLoaded re-picks the shallowest live shard on every request
// (ties keep the previous shard, then the lowest index). Maximum load
// spreading, no affinity.
type PickLeastLoaded struct{}

// Pick implements ShardPicker.
func (PickLeastLoaded) Pick(client int32, last int, v ShardView) int {
	best, bd := -1, 0
	for s := 0; s < v.Shards(); s++ {
		if !v.Alive(s) {
			continue
		}
		d := v.Depth(s)
		if best < 0 || d < bd || (d == bd && s == last) {
			best, bd = s, d
		}
	}
	if best < 0 {
		return int(client) % v.Shards()
	}
	return best
}

// Sticky implements ShardPicker.
func (PickLeastLoaded) Sticky() bool { return false }

// group is the sharded-topology state hung off a System built with
// Options.Shards > 0.
type group struct {
	s      *System
	shards int
	picker ShardPicker

	stealMax int // messages per steal; 0 disables stealing
	stealMin int // minimum victim depth worth stealing from

	// Quarantine-circuit configuration (Admission; 0 = circuits off).
	quarAfter    int // consecutive high-water observations to open
	reprobeAfter int // picks sat out before a half-open trial
	highWater    int // lane depth considered "high"

	recvs    []*Channel      // shard wake carriers; recvs[s].q == reqLanes[s]
	reqLanes []*queue.Lanes  // per-shard fan-in over req[s][*]
	repLanes []*queue.Lanes  // per-client fan-in over rep[*][i]
	rep      [][]*queue.SPSC // reply lanes [shard][client]

	dead      []atomic.Bool  // shard declared dead by the sweeper
	circuits  []shardCircuit // per-shard quarantine state
	shardActs []atomic.Int32 // actor id serving each shard (-1 until taken)

	mu    sync.Mutex
	taken []bool // ShardServer(s) issued
}

// shardCircuit is one shard's quarantine state (DESIGN.md §14): a
// breaker that opens after quarAfter consecutive picks saw the shard's
// lanes at or above the high-water mark, sits out reprobeAfter picks,
// then half-opens for one trial pick whose observation closes or
// re-opens it. All fields are advisory atomics updated from client
// goroutines; approximate counts are fine — the circuit bounds
// sustained saturation, not instantaneous depth.
type shardCircuit struct {
	state   atomic.Int32 // circClosed / circOpen / circHalfOpen
	strikes atomic.Int32 // consecutive high-water observations
	idle    atomic.Int32 // picks sat out while open
}

const (
	circClosed int32 = iota
	circOpen
	circHalfOpen
)

// circuitAllows reports whether shard s is pickable despite its
// circuit. An open circuit counts the picks routed around it and
// half-opens after reprobeAfter of them, letting exactly the
// transitioning pick through as the trial (CAS: one winner).
func (g *group) circuitAllows(s int) bool {
	if g.quarAfter <= 0 {
		return true
	}
	c := &g.circuits[s]
	if c.state.Load() != circOpen {
		return true
	}
	if c.idle.Add(1) >= int32(g.reprobeAfter) {
		return c.state.CompareAndSwap(circOpen, circHalfOpen)
	}
	return false
}

// observeShard feeds one pick's depth observation of shard sh into its
// circuit. m (may be nil) receives the Quarantines count when this
// observation opens the circuit.
func (g *group) observeShard(sh, depth int, m *metrics.Proc) {
	if g.quarAfter <= 0 {
		return
	}
	c := &g.circuits[sh]
	high := depth >= g.highWater
	switch c.state.Load() {
	case circHalfOpen:
		// The trial pick's verdict: drained closes the circuit, still
		// saturated re-opens it for another sit-out round.
		if high {
			c.idle.Store(0)
			c.state.Store(circOpen)
		} else {
			c.strikes.Store(0)
			c.state.Store(circClosed)
		}
	case circClosed:
		if !high {
			c.strikes.Store(0)
			return
		}
		if c.strikes.Add(1) >= int32(g.quarAfter) && c.state.CompareAndSwap(circClosed, circOpen) {
			c.idle.Store(0)
			if m != nil {
				m.Quarantines.Add(1)
			}
		}
	}
}

// Quarantined reports whether shard sh's circuit is currently open or
// half-open (diagnostics and tests; false on a non-sharded system).
func (s *System) Quarantined(sh int) bool {
	g := s.grp
	if g == nil || g.quarAfter <= 0 || sh < 0 || sh >= g.shards {
		return false
	}
	return g.circuits[sh].state.Load() != circClosed
}

// newLanesChannel wraps a fan-in lane set as a Channel so the wake
// state, shutdown state, and recovery machinery of the scalar topology
// apply unchanged to a lane group.
func newLanesChannel(l *queue.Lanes) *Channel {
	c := &Channel{q: l, kind: queue.KindSPSC, sem: NewSemaphore(0)}
	c.awake.Store(true)
	return c
}

// buildGroup wires the sharded topology (called by NewSystem when
// Options.Shards > 0, in place of the scalar recv/reply channels).
func (s *System) buildGroup() error {
	o := &s.opts
	g := &group{
		s:            s,
		shards:       o.Shards,
		picker:       o.Picker,
		stealMax:     o.StealBatch,
		stealMin:     o.StealThreshold,
		quarAfter:    o.Admission.QuarantineAfter,
		reprobeAfter: o.Admission.ReprobeAfter,
		highWater:    o.Admission.HighWater,
	}
	if o.NoSteal || g.shards < 2 {
		g.stealMax = 0
	}
	g.dead = make([]atomic.Bool, g.shards)
	g.circuits = make([]shardCircuit, g.shards)
	g.shardActs = make([]atomic.Int32, g.shards)
	for i := range g.shardActs {
		g.shardActs[i].Store(-1)
	}
	g.taken = make([]bool, g.shards)
	g.rep = make([][]*queue.SPSC, g.shards)
	for sh := 0; sh < g.shards; sh++ {
		req := make([]*queue.SPSC, o.Clients)
		g.rep[sh] = make([]*queue.SPSC, o.Clients)
		for i := 0; i < o.Clients; i++ {
			var err error
			if req[i], err = queue.NewSPSC(o.QueueCap); err != nil {
				return err
			}
			if g.rep[sh][i], err = queue.NewSPSC(o.QueueCap); err != nil {
				return err
			}
		}
		lanes, err := queue.NewLanes(req)
		if err != nil {
			return err
		}
		g.reqLanes = append(g.reqLanes, lanes)
		ch := newLanesChannel(lanes)
		s.addSem(ch)
		g.recvs = append(g.recvs, ch)
	}
	for i := 0; i < o.Clients; i++ {
		col := make([]*queue.SPSC, g.shards)
		for sh := range col {
			col[sh] = g.rep[sh][i]
		}
		lanes, err := queue.NewLanes(col)
		if err != nil {
			return err
		}
		g.repLanes = append(g.repLanes, lanes)
		ch := newLanesChannel(lanes)
		s.addSem(ch)
		s.replies = append(s.replies, ch)
	}
	// Lanes are SPSC rings with system-enforced topology, exactly like
	// the scalar SPSC reply default — but here it is structural, not a
	// default, so the WorkerPool rebuild escape hatch stays off.
	s.replySPSC, s.replyAuto = true, false
	s.grp = g
	return nil
}

// refusing reports whether the group entered shutdown phase 1. A dead
// shard's channel also refuses (the sweeper closed it), so the probe
// reads the first live shard — shutdown refuses all of them, a shard
// death only its own.
func (g *group) refusing() bool {
	for s := range g.recvs {
		if !g.dead[s].Load() {
			return g.recvs[s].refuse.Load()
		}
	}
	return true // every shard dead: nothing can accept
}

// allDead reports whether every shard has been declared dead.
func (g *group) allDead() bool {
	for i := range g.dead {
		if !g.dead[i].Load() {
			return false
		}
	}
	return true
}

// shardView adapts group state for ShardPicker. Alive folds the
// quarantine circuits into the liveness view, so non-sticky pickers
// route around a saturated shard exactly as they route around a dead
// one — the probe that half-opens an open circuit reports the shard
// alive again for its one trial pick.
type shardView struct{ g *group }

func (v shardView) Shards() int     { return v.g.shards }
func (v shardView) Depth(s int) int { return v.g.reqLanes[s].Len() }
func (v shardView) Alive(s int) bool {
	return !v.g.dead[s].Load() && v.g.circuitAllows(s)
}

// Shards returns the shard count (0 for a non-sharded system).
func (s *System) Shards() int {
	if s.grp == nil {
		return 0
	}
	return s.grp.shards
}

// ShardDead reports whether the sweeper declared shard sh dead
// (always false on a non-sharded system or out-of-range index).
func (s *System) ShardDead(sh int) bool {
	if s.grp == nil || sh < 0 || sh >= s.grp.shards {
		return false
	}
	return s.grp.dead[sh].Load()
}

// ShardChannel exposes shard sh's fused request channel (diagnostics
// and tests); nil on a non-sharded system.
func (s *System) ShardChannel(sh int) *Channel {
	if s.grp == nil {
		return nil
	}
	return s.grp.recvs[sh]
}

// noteActorDead is the recovery sweeper's group hook: when the dead
// actor was serving a shard, the shard is marked dead and every client
// semaphore gets one compensating V. A client parked on a reply owed
// by the dead shard would otherwise sleep forever (the reply is never
// produced, so no producer-side wake is coming); the V bounces it into
// the consumer loop, where its port's peer-death state turns the wake
// into ErrPeerDead. Clients not owed anything by this shard absorb the
// V as a spurious wake-up — the same token-accounting argument as the
// sweeper's lost-wake rescue.
func (s *System) noteActorDead(id int32) {
	g := s.grp
	if g == nil {
		return
	}
	for sh := range g.shardActs {
		if g.shardActs[sh].Load() != id {
			continue
		}
		g.dead[sh].Store(true)
		for _, ch := range s.replies {
			if !ch.closed.Load() {
				ch.sem.V()
			}
		}
	}
}

// ShardServer builds the server handle for shard sh: its Rcv spans the
// shard's request lanes (plus bounded stealing from sibling shards),
// and Replies[i] produces into this shard's own reply lane to client i
// while waking the client's fused reply channel. Each shard handle may
// be taken once (its lane set is single-consumer).
func (s *System) ShardServer(sh int) (*core.Server, error) {
	g := s.grp
	if g == nil {
		return nil, fmt.Errorf("%w: ShardServer requires Options.Shards > 0 (use Server on a non-sharded system)", ErrBadOption)
	}
	if sh < 0 || sh >= g.shards {
		return nil, fmt.Errorf("livebind: shard index %d out of range [0,%d)", sh, g.shards)
	}
	g.mu.Lock()
	if g.taken[sh] {
		g.mu.Unlock()
		return nil, fmt.Errorf("%w: shard server %d already taken (its lane set is single-consumer)", ErrSPSCTopology, sh)
	}
	g.taken[sh] = true
	g.mu.Unlock()

	a := s.newActor(fmt.Sprintf("shard%d", sh))
	g.shardActs[sh].Store(a.ID)
	replies := make([]core.Port, len(s.replies))
	for i, ch := range s.replies {
		replies[i] = &lanePort{lane: g.rep[sh][i], c: ch}
	}
	s.registerActor(a, []*Channel{g.recvs[sh]}, s.replies)
	return &core.Server{
		Alg:     s.opts.Alg,
		MaxSpin: s.opts.MaxSpin,
		Tuner:   s.newTuner(fmt.Sprintf("shard%d", sh), a),
		Rcv:     &shardRecvPort{g: g, sh: sh, ch: g.recvs[sh], lanes: g.reqLanes[sh], a: a},
		Replies: replies,
		A:       a,
		M:       a.M,
		Obs:     a.Obs,
		Blocks:  s.blockStore(a),
		Owner:   uint32(a.ID),
	}, nil
}

// ShardServers builds every shard's server handle in shard order.
func (s *System) ShardServers() ([]*core.Server, error) {
	if s.grp == nil {
		return nil, fmt.Errorf("%w: ShardServers requires Options.Shards > 0", ErrBadOption)
	}
	out := make([]*core.Server, s.grp.shards)
	for sh := range out {
		srv, err := s.ShardServer(sh)
		if err != nil {
			return nil, err
		}
		out[sh] = srv
	}
	return out, nil
}

// groupClient builds client i's handle on the sharded topology.
func (s *System) groupClient(i int) (*core.Client, error) {
	g := s.grp
	a := s.newActor(fmt.Sprintf("client%d", i))
	home := i % g.shards
	bind := &clientBind{cur: home, last: -1}
	s.registerActor(a, []*Channel{s.replies[i]}, g.recvs)
	return &core.Client{
		ID:        int32(i),
		Alg:       s.opts.Alg,
		MaxSpin:   s.opts.MaxSpin,
		Tuner:     s.newTuner(fmt.Sprintf("client%d", i), a),
		Srv:       &pickPort{g: g, id: int32(i), home: home, sticky: g.picker.Sticky(), bind: bind, m: a.M},
		Rcv:       &clientRcvPort{g: g, ch: s.replies[i], bind: bind},
		A:         a,
		M:         a.M,
		Obs:       a.Obs,
		Blocks:    s.blockStore(a),
		Owner:     uint32(a.ID),
		HighWater: s.opts.Admission.HighWater,
		Budget:    s.retryBudget(),
	}, nil
}

// clientBind is the shard-binding state one client's two ports share.
// Owned by the client's goroutine — Srv writes, Rcv reads, never
// concurrently (a Client handle is single-goroutine by contract).
type clientBind struct {
	cur  int // shard owed the in-flight reply (last successful enqueue)
	last int // last picked shard, -1 before the first pick
}

// pickPort is a client's request endpoint on a sharded system: every
// enqueue picks a shard (control ops always go to the hash home, so
// connect/disconnect bookkeeping stays per-shard coherent) and lands
// on this client's own SPSC lane to that shard. Wake operations
// (TASAwake/Sem) address the shard of the most recent enqueue — the
// protocols call them immediately after a successful enqueue, so the
// binding is always current.
type pickPort struct {
	g      *group
	id     int32
	home   int
	sticky bool
	bind   *clientBind
	m      *metrics.Proc // quarantine attribution; may be nil
}

// pick selects the destination shard for one message and feeds the
// chosen shard's depth into its quarantine circuit (the "N picks"
// clock of the breaker runs on actual traffic, so an idle system
// never quarantines anybody).
func (p *pickPort) pick(m core.Msg) int {
	if m.Op == core.OpConnect || m.Op == core.OpDisconnect {
		return p.home
	}
	sh := p.g.picker.Pick(p.id, p.bind.last, shardView{p.g})
	if sh < 0 || sh >= p.g.shards {
		sh = p.home
	}
	p.bind.last = sh
	p.g.observeShard(sh, p.g.reqLanes[sh].Len(), p.m)
	return sh
}

// pin returns the shard a sticky client is bound to.
func (p *pickPort) pin() int {
	if p.bind.last >= 0 {
		return p.bind.last
	}
	return p.home
}

// TryEnqueue implements core.Port.
func (p *pickPort) TryEnqueue(m core.Msg) bool {
	sh := p.pick(m)
	if !p.g.reqLanes[sh].Lane(int(p.id)).Enqueue(m) {
		return false
	}
	p.bind.cur = sh
	return true
}

// TryEnqueueBatch implements core.BatchPort: one shard decision per
// burst, then a straight run of lane enqueues — the "one routing
// decision, k messages" half of the batching contract.
func (p *pickPort) TryEnqueueBatch(ms []core.Msg) int {
	if len(ms) == 0 {
		return 0
	}
	sh := p.pick(ms[0])
	lane := p.g.reqLanes[sh].Lane(int(p.id))
	n := 0
	for n < len(ms) {
		if !lane.Enqueue(ms[n]) {
			break
		}
		n++
	}
	if n > 0 {
		p.bind.cur = sh
	}
	return n
}

// TryDequeue implements core.Port (request endpoints are never
// dequeued by clients).
func (p *pickPort) TryDequeue() (core.Msg, bool) { return core.Msg{}, false }

// Empty implements core.Port.
func (p *pickPort) Empty() bool { return p.g.reqLanes[p.bind.cur].Empty() }

// Depth implements core.DepthPort, the admission-control observable: a
// sticky client reports its pinned shard's lane depth (that shard is
// the only place its traffic can go), a non-sticky client the
// shallowest live shard's (if even the best destination is past high
// water, the whole group is saturated). Dead shards are excluded;
// quarantined ones are not — their depth is real backlog the breaker
// is draining, and admission should see it.
// Every depth read also feeds the quarantine circuit: under sustained
// overload the admission check rejects sends before any pick happens,
// so the depth probe is the only place a saturated shard is reliably
// observed — without it the circuit could never open exactly when it
// matters most.
func (p *pickPort) Depth() int {
	g := p.g
	if p.sticky {
		sh := p.pin()
		d := g.reqLanes[sh].Len()
		g.observeShard(sh, d, p.m)
		return d
	}
	min := -1
	for s := 0; s < g.shards; s++ {
		if g.dead[s].Load() {
			continue
		}
		d := g.reqLanes[s].Len()
		g.observeShard(s, d, p.m)
		if min < 0 || d < min {
			min = d
		}
	}
	if min < 0 {
		return int(^uint(0) >> 1) // every shard dead: nothing admits
	}
	return min
}

// SetAwake implements core.Port.
func (p *pickPort) SetAwake(v bool) { p.g.recvs[p.bind.cur].awake.Store(v) }

// TASAwake implements core.Port.
func (p *pickPort) TASAwake() bool { return p.g.recvs[p.bind.cur].awake.Swap(true) }

// Sem implements core.Port.
func (p *pickPort) Sem() core.SemID { return p.g.recvs[p.bind.cur].id }

// Refusing implements core.PortState: shutdown, a sticky client's
// dead pin, or a fully dead group all make new sends fail fast.
func (p *pickPort) Refusing() bool {
	if p.g.refusing() {
		return true
	}
	if p.sticky && p.g.dead[p.pin()].Load() {
		return true
	}
	return p.g.allDead()
}

// Closed implements core.PortState.
func (p *pickPort) Closed() bool {
	if p.g.recvs[p.pin()].closed.Load() {
		return true
	}
	return p.sticky && p.g.dead[p.pin()].Load()
}

// PeerDead implements core.PortHealth: it decides whether a refused
// send surfaces ErrPeerDead (this client's shard died) rather than
// ErrShutdown.
func (p *pickPort) PeerDead() bool {
	if p.sticky && p.g.dead[p.pin()].Load() {
		return true
	}
	return p.g.allDead()
}

// clientRcvPort is a client's reply endpoint: the fan-in over its
// reply lanes from every shard. Its closed/dead view folds in the
// death of the shard owed the in-flight reply (bind.cur): Send is
// synchronous, so at most one reply is outstanding, and it is owed by
// exactly that shard — when the sweeper declares it dead, the parked
// wait must end in ErrPeerDead instead of sleeping forever.
type clientRcvPort struct {
	g    *group
	ch   *Channel
	bind *clientBind
}

// TryEnqueue implements core.Port (reply endpoints are never enqueued
// by clients).
func (p *clientRcvPort) TryEnqueue(core.Msg) bool { return false }

// TryDequeue implements core.Port.
func (p *clientRcvPort) TryDequeue() (core.Msg, bool) { return p.ch.q.Dequeue() }

// Empty implements core.Port.
func (p *clientRcvPort) Empty() bool { return p.ch.q.Empty() }

// SetAwake implements core.Port.
func (p *clientRcvPort) SetAwake(v bool) { p.ch.awake.Store(v) }

// TASAwake implements core.Port.
func (p *clientRcvPort) TASAwake() bool { return p.ch.awake.Swap(true) }

// Sem implements core.Port.
func (p *clientRcvPort) Sem() core.SemID { return p.ch.id }

// Refusing implements core.PortState.
func (p *clientRcvPort) Refusing() bool { return p.ch.refuse.Load() }

// Closed implements core.PortState.
func (p *clientRcvPort) Closed() bool {
	return p.ch.closed.Load() || p.g.dead[p.bind.cur].Load()
}

// PeerDead implements core.PortHealth.
func (p *clientRcvPort) PeerDead() bool {
	return p.ch.dead.Load() || p.g.dead[p.bind.cur].Load()
}

// lanePort is a shard's reply endpoint to one client: the payload goes
// into this shard's own SPSC lane (single producer: this shard), while
// the wake state and shutdown state belong to the client's fused reply
// channel.
type lanePort struct {
	lane *queue.SPSC
	c    *Channel
}

// TryEnqueue implements core.Port.
func (p *lanePort) TryEnqueue(m core.Msg) bool { return p.lane.Enqueue(m) }

// TryEnqueueBatch implements core.BatchPort.
func (p *lanePort) TryEnqueueBatch(ms []core.Msg) int {
	n := 0
	for n < len(ms) {
		if !p.lane.Enqueue(ms[n]) {
			break
		}
		n++
	}
	return n
}

// TryDequeue implements core.Port (producer-only endpoint).
func (p *lanePort) TryDequeue() (core.Msg, bool) { return core.Msg{}, false }

// Empty implements core.Port.
func (p *lanePort) Empty() bool { return p.lane.Empty() }

// SetAwake implements core.Port.
func (p *lanePort) SetAwake(v bool) { p.c.awake.Store(v) }

// TASAwake implements core.Port.
func (p *lanePort) TASAwake() bool { return p.c.awake.Swap(true) }

// Sem implements core.Port.
func (p *lanePort) Sem() core.SemID { return p.c.id }

// Refusing implements core.PortState.
func (p *lanePort) Refusing() bool { return p.c.refuse.Load() }

// Closed implements core.PortState.
func (p *lanePort) Closed() bool { return p.c.closed.Load() }

// PeerDead implements core.PortHealth.
func (p *lanePort) PeerDead() bool { return p.c.dead.Load() }

// shardRecvPort is a shard server's receive endpoint: its own lane
// fan-in first, then — when the shard runs dry and stealing is on — a
// bounded batch from the deepest live sibling. Stolen messages are
// stashed and handed out one at a time so the Server's per-message
// accounting (wake retirement, outstanding audit) applies unchanged.
type shardRecvPort struct {
	g     *group
	sh    int
	ch    *Channel
	lanes *queue.Lanes
	a     *Actor

	stash []core.Msg
	si    int
}

// TryDequeue implements core.Port.
func (p *shardRecvPort) TryDequeue() (core.Msg, bool) {
	if p.si < len(p.stash) {
		m := p.stash[p.si]
		p.si++
		return m, true
	}
	if m, ok := p.lanes.Dequeue(); ok {
		return m, true
	}
	if n := p.steal(); n > 0 {
		p.si = 1
		return p.stash[0], true
	}
	return core.Msg{}, false
}

// steal takes a bounded batch from the deepest live sibling shard into
// the stash and re-wakes the victim if its lanes still hold messages —
// the victim may have parked while the steal held its lane lock,
// consuming a producer's wake token without seeing the message it
// announced, and without the re-wake that residue would strand (see
// DESIGN.md §10, steal protocol).
func (p *shardRecvPort) steal() int {
	g := p.g
	if g.stealMax <= 0 {
		return 0
	}
	victim, depth := -1, g.stealMin-1
	for s := 0; s < g.shards; s++ {
		if s == p.sh || g.dead[s].Load() {
			continue
		}
		if d := g.reqLanes[s].Len(); d > depth {
			victim, depth = s, d
		}
	}
	if victim < 0 {
		return 0
	}
	if cap(p.stash) < g.stealMax {
		p.stash = make([]core.Msg, g.stealMax)
	}
	n := g.reqLanes[victim].Steal(p.stash[:g.stealMax], g.stealMin)
	p.stash = p.stash[:n]
	if n > 0 && !g.reqLanes[victim].Empty() {
		vch := g.recvs[victim]
		if !vch.awake.Swap(true) {
			p.a.V(vch.id)
		}
	}
	return n
}

// TryEnqueue implements core.Port (consumer-only endpoint).
func (p *shardRecvPort) TryEnqueue(core.Msg) bool { return false }

// Empty implements core.Port. It reflects only this shard's own
// backlog (plus the stash); steal opportunities are probed on the
// dequeue path, not the spin poll.
func (p *shardRecvPort) Empty() bool {
	return p.si >= len(p.stash) && p.lanes.Empty()
}

// SetAwake implements core.Port.
func (p *shardRecvPort) SetAwake(v bool) { p.ch.awake.Store(v) }

// TASAwake implements core.Port.
func (p *shardRecvPort) TASAwake() bool { return p.ch.awake.Swap(true) }

// Sem implements core.Port.
func (p *shardRecvPort) Sem() core.SemID { return p.ch.id }

// Refusing implements core.PortState.
func (p *shardRecvPort) Refusing() bool { return p.ch.refuse.Load() }

// Closed implements core.PortState.
func (p *shardRecvPort) Closed() bool { return p.ch.closed.Load() }

// PeerDead implements core.PortHealth.
func (p *shardRecvPort) PeerDead() bool { return p.ch.dead.Load() }

var (
	_ core.Port       = (*pickPort)(nil)
	_ core.PortState  = (*pickPort)(nil)
	_ core.PortHealth = (*pickPort)(nil)
	_ core.BatchPort  = (*pickPort)(nil)
	_ core.DepthPort  = (*pickPort)(nil)
	_ core.Port       = (*clientRcvPort)(nil)
	_ core.PortState  = (*clientRcvPort)(nil)
	_ core.PortHealth = (*clientRcvPort)(nil)
	_ core.Port       = (*lanePort)(nil)
	_ core.PortState  = (*lanePort)(nil)
	_ core.PortHealth = (*lanePort)(nil)
	_ core.BatchPort  = (*lanePort)(nil)
	_ core.Port       = (*shardRecvPort)(nil)
	_ core.PortState  = (*shardRecvPort)(nil)
	_ core.PortHealth = (*shardRecvPort)(nil)
)
