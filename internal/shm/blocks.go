package shm

import (
	"fmt"
	"sync/atomic"
)

// Variable-sized messages (Section 2.1): "Variable sized messages can be
// accommodated by using one of the fields of the fixed sized message to
// point to a variable sized component in shared memory." BlockPool is
// that shared-memory component store: a slab allocator with power-of-two
// size classes, addressed by position-independent 32-bit references so
// the whole pool could live in a mapped segment.

// BlockRef is a position-independent reference to an allocated block:
// the size class in the high 8 bits, the slot index in the low 24.
type BlockRef = uint32

// NilBlock is the null block reference.
const NilBlock BlockRef = ^BlockRef(0)

func packBlock(class, slot int) BlockRef {
	return BlockRef(class)<<24 | BlockRef(slot)&0xFFFFFF
}

func unpackBlock(r BlockRef) (class, slot int) {
	return int(r >> 24), int(r & 0xFFFFFF)
}

// slabClass is one size class: count slots of size bytes plus a lock-free
// free stack of slot indices (tagged against ABA like the node pool).
type slabClass struct {
	size  int
	count int
	data  []byte
	next  []uint32 // free-list links, indexed by slot
	head  atomic.Uint64
	free  atomic.Int64
}

const slotNil = uint32(0xFFFFFFFF)

func newSlabClass(size, count int) *slabClass {
	c := &slabClass{
		size:  size,
		count: count,
		data:  make([]byte, size*count),
		next:  make([]uint32, count),
	}
	c.head.Store(packHead(0, NilRef))
	for i := count - 1; i >= 0; i-- {
		c.push(uint32(i))
	}
	return c
}

func (c *slabClass) push(slot uint32) {
	for {
		h := c.head.Load()
		tag, top := unpackHead(h)
		c.next[slot] = top
		if c.head.CompareAndSwap(h, packHead(tag+1, slot)) {
			c.free.Add(1)
			return
		}
	}
}

func (c *slabClass) pop() (uint32, bool) {
	for {
		h := c.head.Load()
		tag, top := unpackHead(h)
		if top == slotNil {
			return 0, false
		}
		if c.head.CompareAndSwap(h, packHead(tag+1, c.next[top])) {
			c.free.Add(-1)
			return top, true
		}
	}
}

// BlockPool is the variable-sized-component store.
type BlockPool struct {
	classes []*slabClass
}

// DefaultBlockSizes are the size classes used by NewDefaultBlockPool.
var DefaultBlockSizes = []int{64, 256, 1024, 4096}

// NewBlockPool builds a pool with the given class sizes (ascending) and
// the same slot count in each class.
func NewBlockPool(sizes []int, countPerClass int) (*BlockPool, error) {
	if len(sizes) == 0 || len(sizes) > 255 {
		return nil, fmt.Errorf("shm: need 1..255 size classes, got %d", len(sizes))
	}
	if countPerClass < 1 || countPerClass > 0xFFFFFF {
		return nil, fmt.Errorf("shm: count per class out of range: %d", countPerClass)
	}
	p := &BlockPool{}
	prev := 0
	for _, size := range sizes {
		if size <= prev {
			return nil, fmt.Errorf("shm: class sizes must be ascending, got %v", sizes)
		}
		prev = size
		p.classes = append(p.classes, newSlabClass(size, countPerClass))
	}
	return p, nil
}

// NewDefaultBlockPool builds a pool with the default size classes.
func NewDefaultBlockPool(countPerClass int) (*BlockPool, error) {
	return NewBlockPool(DefaultBlockSizes, countPerClass)
}

// MaxBlock returns the largest allocatable block size.
func (p *BlockPool) MaxBlock() int { return p.classes[len(p.classes)-1].size }

// Alloc returns a block of at least n bytes, or false if no class can
// satisfy the request (too large, or the class is exhausted — the
// caller's flow control reacts exactly as it does to a full queue).
func (p *BlockPool) Alloc(n int) (BlockRef, []byte, bool) {
	if n < 0 {
		return NilBlock, nil, false
	}
	for ci, c := range p.classes {
		if c.size < n {
			continue
		}
		if slot, ok := c.pop(); ok {
			off := int(slot) * c.size
			return packBlock(ci, int(slot)), c.data[off : off+c.size : off+c.size], true
		}
		// Exhausted: fall through to a larger class.
	}
	return NilBlock, nil, false
}

// Get returns the storage of an allocated block.
func (p *BlockPool) Get(r BlockRef) ([]byte, error) {
	class, slot := unpackBlock(r)
	if class >= len(p.classes) {
		return nil, fmt.Errorf("shm: bad block class %d", class)
	}
	c := p.classes[class]
	if slot >= c.count {
		return nil, fmt.Errorf("shm: bad block slot %d (class %d)", slot, class)
	}
	off := slot * c.size
	return c.data[off : off+c.size : off+c.size], nil
}

// Free returns a block to its class.
func (p *BlockPool) Free(r BlockRef) error {
	class, slot := unpackBlock(r)
	if class >= len(p.classes) {
		return fmt.Errorf("shm: bad block class %d", class)
	}
	c := p.classes[class]
	if slot >= c.count {
		return fmt.Errorf("shm: bad block slot %d (class %d)", slot, class)
	}
	c.push(uint32(slot))
	return nil
}

// FreeCount returns the free slots in the class holding blocks of at
// least n bytes (diagnostics).
func (p *BlockPool) FreeCount(n int) int64 {
	for _, c := range p.classes {
		if c.size >= n {
			return c.free.Load()
		}
	}
	return 0
}
