//go:build linux && !nofutex

package livebind

import (
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"
)

// Real futex backend: FUTEX_WAIT/FUTEX_WAKE on a 32-bit word in shared
// memory. This is the only sleep/wake primitive that crosses address
// spaces — sync.Cond and channels are process-local, but a futex word in
// a MAP_SHARED page parks a thread in one process and lets a V from
// another process wake it with a single syscall.
//
// The shared (non-PRIVATE) futex opcodes are used deliberately: the
// PRIVATE variants skip the cross-process hash lookup and would silently
// fail to match waiters in other address spaces.

// FutexBackend names the wake primitive this binary was built with
// ("futex" or "poll"); recorded in bench reports so baselines from the
// two builds are never silently compared.
const FutexBackend = "futex"

const (
	futexOpWait = 0 // FUTEX_WAIT
	futexOpWake = 1 // FUTEX_WAKE
)

// futexWait parks the calling thread while *addr == val, for at most d
// (d <= 0 means no timeout). Returns spuriously on EINTR, EAGAIN (the
// word already changed) and timeout — callers always re-check their
// condition in a loop, so spurious returns are harmless.
func futexWait(addr *atomic.Uint32, val uint32, d time.Duration) {
	var tsp *syscall.Timespec
	if d > 0 {
		ts := syscall.NsecToTimespec(int64(d))
		tsp = &ts
	}
	_, _, _ = syscall.Syscall6(
		syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)),
		futexOpWait,
		uintptr(val),
		uintptr(unsafe.Pointer(tsp)),
		0, 0,
	)
}

// futexWake wakes up to n threads parked on addr — in this process or
// any other that mapped the same page.
func futexWake(addr *atomic.Uint32, n int) {
	_, _, _ = syscall.Syscall6(
		syscall.SYS_FUTEX,
		uintptr(unsafe.Pointer(addr)),
		futexOpWake,
		uintptr(n),
		0, 0, 0,
	)
}
