package ulipc_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestPublicAPIGolden pins the exported surface of package ulipc to
// testdata/api_golden.txt. An unreviewed addition, removal, or rename
// of an exported identifier fails this test; an intended API change
// updates the golden file in the same commit (run with -update).
//
// This is the guard rail for the v2 redesign: it proves the deprecated
// ReplyKind helper and pointer field stayed removed, and that the
// consolidated tuning surface (Tuning, WithTuning, WithAdaptive, BSA,
// ErrBadTuning) is present.
var update = os.Getenv("ULIPC_UPDATE_GOLDEN") != ""

func TestPublicAPIGolden(t *testing.T) {
	got := strings.Join(exportedSurface(t), "\n") + "\n"
	golden := filepath.Join("testdata", "api_golden.txt")
	if update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (set ULIPC_UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exported API surface drifted from %s.\nSet ULIPC_UPDATE_GOLDEN=1 to accept an intended change.\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// exportedSurface lists every exported top-level identifier of the
// root package, one "kind name" line each, sorted.
func exportedSurface(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, ok := pkgs["ulipc"]
	if !ok {
		t.Fatalf("package ulipc not found in %v", pkgs)
	}
	var out []string
	add := func(kind, name string) {
		if ast.IsExported(name) {
			out = append(out, fmt.Sprintf("%s %s", kind, name))
		}
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil { // methods live on aliased internal types
					add("func", d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						add("type", s.Name.Name)
					case *ast.ValueSpec:
						kind := "var"
						if d.Tok == token.CONST {
							kind = "const"
						}
						for _, n := range s.Names {
							add(kind, n.Name)
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// The redesign's specific guarantees, asserted directly so a golden
// regeneration cannot silently revert them.
func TestPublicAPIRedesignInvariants(t *testing.T) {
	surface := exportedSurface(t)
	has := func(line string) bool {
		for _, s := range surface {
			if s == line {
				return true
			}
		}
		return false
	}
	for _, want := range []string{
		"const BSA",
		"type Tuning",
		"type TunerSnapshot",
		"var WithTuning",
		"var WithAdaptive",
		"var ErrBadTuning",
		"var WithReplyKind",
	} {
		if !has(want) {
			t.Errorf("missing %q in exported surface", want)
		}
	}
	// The v1 pointer-field escape hatch must stay removed.
	if has("func ReplyKind") || has("var ReplyKind") {
		t.Error("deprecated ReplyKind helper is back in the exported surface")
	}
}
