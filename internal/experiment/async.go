package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
	"ulipc/internal/simbind"
)

// RunAsync demonstrates the asynchronous-IPC advantage the paper's
// introduction motivates: "a client process can enqueue multiple
// asynchronous messages on to a shared queue without blocking waiting
// for a response... when the server gets the opportunity to run, it can
// handle requests and respond without invoking kernel services until all
// pending requests are processed." The experiment compares the
// per-message round-trip cost of synchronous Sends against async batches
// of increasing depth on the SGI uniprocessor model.
func RunAsync(opt Options) (*Report, error) {
	r := newReport("async", "Asynchronous send batching (uniprocessor)",
		"batching asynchronous sends amortises system calls and context switches across the batch")
	msgs := opt.msgs()

	t := &chart.Table{
		Title:   "Async batching — SGI uniprocessor, BSW protocol",
		Headers: []string{"batch", "us/msg", "syscalls/msg", "switches/msg"},
	}
	var perMsg []float64
	batches := []int{1, 2, 4, 8, 16}
	for _, batch := range batches {
		us, sysPer, csPer, err := runAsyncBatch(machine.SGIIndy(), batch, msgs)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", batch), f2(us), f2(sysPer), f2(csPer))
		perMsg = append(perMsg, us)
		r.Records[fmt.Sprintf("async/us_per_msg/%d", batch)] = us
		r.Records[fmt.Sprintf("async/syscalls_per_msg/%d", batch)] = sysPer
	}
	r.Tables = append(r.Tables, t)
	r.Plots = append(r.Plots, &chart.Plot{
		Title:  "Async batching — per-message cost vs batch depth",
		XLabel: "batch depth", YLabel: "us/msg",
		X:      floats(batches),
		Series: []chart.Series{{Name: "BSW async", Y: perMsg}},
	})
	r.note("Batch 1 is a synchronous round trip; deeper batches approach the pure enqueue/dequeue cost because the server drains the whole queue per activation.")
	return r, nil
}

// runAsyncBatch runs one client issuing msgs requests in async batches
// of the given depth against an echoing server, all over the BSW
// protocol, and returns per-message cost and syscall/switch rates.
func runAsyncBatch(m *machine.Model, batch, msgs int) (usPerMsg, syscallsPerMsg, switchesPerMsg float64, err error) {
	pol, err := sched.New(sched.PolicyDegrading)
	if err != nil {
		return 0, 0, 0, err
	}
	ms := metrics.NewSet()
	k, err := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: ms})
	if err != nil {
		return 0, 0, 0, err
	}
	// Queue capacity must accommodate a full batch.
	capacity := batch * 2
	if capacity < 64 {
		capacity = 64
	}
	recvQ := simbind.NewQueue(k, "recvQ", capacity)
	replyQ := simbind.NewQueue(k, "replyQ", capacity)

	rounds := msgs / batch
	if rounds < 1 {
		rounds = 1
	}
	total := rounds * batch

	k.Spawn("server", 0, func(p *sim.Proc) {
		srv := &core.Server{
			Alg:     core.BSW,
			Rcv:     simbind.NewPort(p, recvQ),
			Replies: []core.Port{simbind.NewPort(p, replyQ)},
			A:       simbind.NewActor(p),
			M:       p.M,
		}
		for i := 0; i < total; i++ {
			msg := srv.Receive()
			srv.Reply(0, msg)
		}
	})

	var elapsed sim.Time
	k.Spawn("client0", 0, func(p *sim.Proc) {
		cl := &core.Client{
			ID:  0,
			Alg: core.BSW,
			Srv: simbind.NewPort(p, recvQ),
			Rcv: simbind.NewPort(p, replyQ),
			A:   simbind.NewActor(p),
			M:   p.M,
		}
		t0 := p.Now()
		seq := int32(0)
		for round := 0; round < rounds; round++ {
			for i := 0; i < batch; i++ {
				cl.SendAsync(core.Msg{Op: core.OpEcho, Seq: seq})
				seq++
			}
			for i := 0; i < batch; i++ {
				cl.RecvReply()
			}
		}
		elapsed = p.Now() - t0
	})

	if err := k.Run(); err != nil {
		return 0, 0, 0, err
	}
	tot := ms.Total()
	n := float64(total)
	return float64(elapsed) / 1000.0 / n,
		float64(tot.Syscalls) / n,
		float64(tot.SwitchesTotal()) / n,
		nil
}
