package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// Fig10Spins are the MAX_SPIN values swept on the uniprocessors.
var Fig10Spins = []int{1, 2, 5, 20}

// RunFig10 reproduces Figure 10: the sensitivity of Both Sides Limited
// Spin to MAX_SPIN on the uniprocessors, plus the Section 4.2 spin-loop
// statistics ("at a MAX_SPIN value of 20, a single client only blocks 3%
// of the time, and gets an answer back within 2 iterations on average;
// with six clients 10% of the loops fall through and 4 iterations are
// executed on average").
func RunFig10(opt Options) (*Report, error) {
	r := newReport("fig10", "BSLS MAX_SPIN sensitivity (uniprocessor)",
		"performance generally improves as MAX_SPIN increases; with MAX_SPIN=20 BSLS nearly matches busy-waiting BSS")
	clients := clientSweep(opt.Quick)
	msgs := opt.msgs()

	for _, m := range uniMachines() {
		short := shortName(m)
		curves := map[string][]float64{}
		var order []string
		for _, spin := range Fig10Spins {
			ths, _, err := sweep(workload.Config{Machine: m, Alg: core.BSLS, MaxSpin: spin}, clients, msgs)
			if err != nil {
				return nil, err
			}
			name := fmt.Sprintf("BSLS-%d", spin)
			curves[name] = ths
			order = append(order, name)
			r.recordCurve(fmt.Sprintf("fig10/%s/spin%d", short, spin), clients, ths)
		}
		bss, _, err := sweep(workload.Config{Machine: m, Alg: core.BSS}, clients, msgs)
		if err != nil {
			return nil, err
		}
		curves["BSS"] = bss
		order = append(order, "BSS")
		r.recordCurve("fig10/"+short+"/bss", clients, bss)

		r.Tables = append(r.Tables, throughputTable(
			fmt.Sprintf("Figure 10 — %s (messages/ms)", m.Name), clients, curves, order))
		r.Plots = append(r.Plots, throughputPlot(
			fmt.Sprintf("Figure 10 — %s", m.Name), clients, curves, order))
	}

	// Section 4.2 statistics on the SGI: how often the client spin loop
	// falls through to the blocking path, and iterations per loop.
	stats := &chart.Table{
		Title:   "Section 4.2 — BSLS client spin-loop statistics (SGI)",
		Headers: []string{"clients", "MAX_SPIN", "fall-through", "avg iterations", "client blocks/msg"},
	}
	for _, n := range []int{1, 6} {
		for _, spin := range Fig10Spins {
			res, err := workload.RunSim(workload.Config{
				Machine: machine.SGIIndy(), Alg: core.BSLS, MaxSpin: spin,
				Clients: n, Msgs: msgs,
			})
			if err != nil {
				return nil, err
			}
			cl := res.Clients
			fall := 0.0
			iters := 0.0
			if cl.SpinLoops > 0 {
				fall = float64(cl.SpinFallThrus) / float64(cl.SpinLoops) * 100
				iters = float64(cl.SpinIters) / float64(cl.SpinLoops)
			}
			blocksPerMsg := float64(cl.Blocks) / float64(res.TotalMsgs)
			stats.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", spin),
				fmt.Sprintf("%.1f%%", fall), f1(iters), f2(blocksPerMsg))
			r.Records[fmt.Sprintf("fig10/stats/fallthrough/%d/%d", n, spin)] = fall
			r.Records[fmt.Sprintf("fig10/stats/iters/%d/%d", n, spin)] = iters
		}
	}
	r.Tables = append(r.Tables, stats)
	r.note("Paper (MAX_SPIN=20): 1 client blocks 3%% of the time with ~2 iterations; 6 clients fall through 10%% with ~4 iterations. The deterministic simulator has no OS noise, so at MAX_SPIN=20 the fall-through rate is 0 — the direction of the claim (blocking is rare at MAX_SPIN=20, frequent at small MAX_SPIN) is what the table checks.")
	return r, nil
}
