package experiment

import (
	"fmt"

	"ulipc/internal/chart"
	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/sim/sched"
	"ulipc/internal/simbind"
)

// RunTable1 reproduces Table 1: the measured times for the primitive
// operations on the two uniprocessor platforms — the enqueue/dequeue
// pair, the msgsnd/msgrcv pair, and concurrent yield loop trips with
// 1, 2 and 4 processes.
func RunTable1(opt Options) (*Report, error) {
	r := newReport("table1", "Measured times for primitive operations",
		"SGI: enq/deq pair 3us, msgsnd/msgrcv pair 37us, concurrent yields 16/18/45us for 1/2/4 processes")

	iters := opt.msgs() * 5
	type row struct {
		name  string
		paper map[string]string // per machine; "?" where the source is unreadable
		get   func(m *machine.Model) (float64, error)
	}
	rows := []row{
		{
			name:  "enqueue/dequeue pair (us)",
			paper: map[string]string{"sgi": "3", "ibm": "(unreadable)"},
			get:   func(m *machine.Model) (float64, error) { return measureEnqDeq(m, iters) },
		},
		{
			name:  "msgsnd/msgrcv pair (us)",
			paper: map[string]string{"sgi": "37", "ibm": "(unreadable)"},
			get:   func(m *machine.Model) (float64, error) { return measureMsgPair(m, iters) },
		},
		{
			name:  "concurrent yields, 1 process (us)",
			paper: map[string]string{"sgi": "16", "ibm": "(unreadable)"},
			get:   func(m *machine.Model) (float64, error) { return measureYields(m, 1, iters) },
		},
		{
			name:  "concurrent yields, 2 processes (us)",
			paper: map[string]string{"sgi": "18", "ibm": "(unreadable)"},
			get:   func(m *machine.Model) (float64, error) { return measureYields(m, 2, iters) },
		},
		{
			name:  "concurrent yields, 4 processes (us)",
			paper: map[string]string{"sgi": "45", "ibm": "(unreadable)"},
			get:   func(m *machine.Model) (float64, error) { return measureYields(m, 4, iters) },
		},
	}

	for _, m := range uniMachines() {
		short := "sgi"
		if m.Name == machine.IBMP4().Name {
			short = "ibm"
		}
		t := throughputTableHeader(m.Name)
		for i, rw := range rows {
			v, err := rw.get(m)
			if err != nil {
				return nil, err
			}
			t.AddRow(rw.name, rw.paper[short], f2(v))
			r.Records[fmt.Sprintf("t1/%s/%d", short, i)] = v
		}
		r.Tables = append(r.Tables, t)
	}
	r.note("Paper's IBM column is unreadable in our source; the IBM costs are calibrated to the Figure 2b anchors instead (see EXPERIMENTS.md).")
	r.note("Concurrent-yield trips are wall time divided by total yields across processes, matching the paper's per-process normalisation.")
	return r, nil
}

func throughputTableHeader(name string) *chart.Table {
	return &chart.Table{
		Title:   "Table 1 — " + name,
		Headers: []string{"primitive", "paper", "measured"},
	}
}

// measureEnqDeq times an enqueue/dequeue pair executed by one process in
// a tight loop (as the paper measures it: no contention, no blocking).
func measureEnqDeq(m *machine.Model, iters int) (float64, error) {
	var perPair float64
	err := microRun(m, func(k *sim.Kernel) {
		q := simbind.NewQueue(k, "q", 4)
		k.Spawn("bench", 0, func(p *sim.Proc) {
			port := simbind.NewPort(p, q)
			t0 := p.Now()
			for i := 0; i < iters; i++ {
				port.TryEnqueue(core.Msg{Val: float64(i)})
				port.TryDequeue()
			}
			perPair = float64(p.Now()-t0) / float64(iters) / 1000.0
		})
	})
	return perPair, err
}

// measureMsgPair times a msgsnd/msgrcv pair executed by one process in a
// tight loop against a System V queue.
func measureMsgPair(m *machine.Model, iters int) (float64, error) {
	var perPair float64
	err := microRun(m, func(k *sim.Kernel) {
		q := k.NewMsgQueue(4)
		k.Spawn("bench", 0, func(p *sim.Proc) {
			t0 := p.Now()
			for i := 0; i < iters; i++ {
				p.MsgSnd(q, i)
				p.MsgRcv(q)
			}
			perPair = float64(p.Now()-t0) / float64(iters) / 1000.0
		})
	})
	return perPair, err
}

// measureYields reproduces the concurrent-yield experiment: n processes
// barrier and then enter a tight yield loop; the reported time is wall
// time divided by the total number of yields.
func measureYields(m *machine.Model, n, iters int) (float64, error) {
	var start, end sim.Time
	err := microRun(m, func(k *sim.Kernel) {
		b := k.NewBarrier(n)
		for i := 0; i < n; i++ {
			i := i
			k.Spawn(fmt.Sprintf("spinner%d", i), 0, func(p *sim.Proc) {
				p.Barrier(b)
				if i == 0 {
					start = p.Now()
				}
				for j := 0; j < iters; j++ {
					p.Yield()
				}
				if t := p.Now(); t > end {
					end = t
				}
			})
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(end-start) / float64(n*iters) / 1000.0, nil
}

// microRun builds a kernel with the default degrading policy, lets setup
// spawn the processes, and runs to completion.
func microRun(m *machine.Model, setup func(*sim.Kernel)) error {
	pol, err := sched.New(sched.PolicyDegrading)
	if err != nil {
		return err
	}
	k, err := sim.New(sim.Config{Machine: m, Sched: pol, Metrics: metrics.NewSet()})
	if err != nil {
		return err
	}
	setup(k)
	return k.Run()
}
