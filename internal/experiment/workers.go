package experiment

import (
	"fmt"

	"ulipc/internal/core"
	"ulipc/internal/machine"
	"ulipc/internal/workload"
)

// RunWorkers evaluates the "multiple server threads" extension of
// Section 2.1: a pool of server workers receiving from one shared queue
// on the 8-CPU Challenge, with 20us of processing per request so the
// single-threaded server is the bottleneck. The pool uses the
// counted-waiters wake discipline — the paper's single awake flag is
// provably broken for more than one sleeping worker (see
// internal/protomodel and cmd/ipcrace).
func RunWorkers(opt Options) (*Report, error) {
	r := newReport("workers", "Server worker pool scaling (multiprocessor)",
		"Section 2.1: concurrent queues support multiple server threads; throughput should scale with the pool until clients or CPUs run out")
	clients := mpClientSweep(opt.Quick)
	msgs := opt.msgs()
	m := machine.SGIChallenge8()
	const work = 20 * machine.Microsecond

	curves := map[string][]float64{}
	var order []string
	for _, workers := range []int{1, 2, 4} {
		ths, _, err := sweep(workload.Config{
			Machine: m, Alg: core.BSW, ServerWork: work, ServerWorkers: workers,
		}, clients, msgs)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("%d-worker", workers)
		if workers > 1 {
			name += "s"
		}
		curves[name] = ths
		order = append(order, name)
		r.recordCurve(fmt.Sprintf("workers/%d", workers), clients, ths)
	}

	r.Tables = append(r.Tables, throughputTable(
		fmt.Sprintf("Worker pool — %s, BSW, %dus/request (messages/ms)", m.Name, work/machine.Microsecond),
		clients, curves, order))
	r.Plots = append(r.Plots, throughputPlot("Worker pool scaling", clients, curves, order))

	// Scaling factors at saturation (the largest client count).
	last := len(clients) - 1
	base := curves["1-worker"][last]
	if base > 0 {
		r.Records["workers/speedup2"] = curves["2-workers"][last] / base
		r.Records["workers/speedup4"] = curves["4-workers"][last] / base
	}
	r.note(fmt.Sprintf("Saturated speedup vs a single server: x%.2f with 2 workers, x%.2f with 4 (ideal: 2 and 4).",
		r.Records["workers/speedup2"], r.Records["workers/speedup4"]))
	r.note("The wake discipline matters: internal/protomodel proves the paper's single awake flag loses wake-ups with >= 2 sleeping workers; the pool's counted-waiters discipline is verified by the same exhaustive checker.")
	return r, nil
}
