//go:build linux

package livebind

import "syscall"

// osYield is a real sched_yield(2): in the cross-process binding a yield
// must be visible to the kernel scheduler, not just the Go runtime —
// the peer that should run next lives in another process, which
// runtime.Gosched cannot help.
func osYield() {
	_, _, _ = syscall.Syscall(syscall.SYS_SCHED_YIELD, 0, 0, 0)
}

// pidAlive probes a peer process with the null signal. EPERM still
// proves existence (the process is alive but owned by someone else);
// only ESRCH proves death.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || err == syscall.EPERM
}
