package workload

import (
	"fmt"
	"sync/atomic"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/sim"
	"ulipc/internal/simbind"
)

// runSimULIPC runs the user-level IPC workload on the simulated kernel.
func runSimULIPC(k *sim.Kernel, cfg Config, ms *metrics.Set) (Result, error) {
	rec := &recorder{}
	capacity := cfg.queueCap()

	recvQ := simbind.NewQueue(k, "recvQ", capacity)
	replyQs := make([]*simbind.SQueue, cfg.Clients)
	for i := range replyQs {
		replyQs[i] = simbind.NewQueue(k, fmt.Sprintf("replyQ%d", i), capacity)
	}
	barrier := k.NewBarrier(cfg.Clients)
	op := opForRun(cfg)

	var stop atomic.Bool
	spawnBackground(k, cfg, &stop)

	serverProc := k.Spawn("server", cfg.ServerPrio, func(p *sim.Proc) {
		actor := simbind.NewActor(p)
		replies := make([]core.Port, cfg.Clients)
		for i := range replies {
			replies[i] = simbind.NewPort(p, replyQs[i])
		}
		srv := &core.Server{
			Alg:        cfg.Alg,
			MaxSpin:    cfg.MaxSpin,
			Rcv:        simbind.NewPort(p, recvQ),
			Replies:    replies,
			A:          actor,
			M:          p.M,
			UseHandoff: cfg.Handoff,
			Throttle:   cfg.Throttle,
		}
		var work func(*core.Msg)
		if cfg.ServerWork > 0 {
			work = func(*core.Msg) { p.Step(cfg.ServerWork) }
		}
		srv.Serve(work)
		rec.lastDone = p.Now()
		stop.Store(true)
	})

	for i := 0; i < cfg.Clients; i++ {
		i := i
		k.Spawn(fmt.Sprintf("client%d", i), cfg.ClientPrio, func(p *sim.Proc) {
			actor := simbind.NewActor(p)
			cl := &core.Client{
				ID:            int32(i),
				Alg:           cfg.Alg,
				MaxSpin:       cfg.MaxSpin,
				Srv:           simbind.NewPort(p, recvQ),
				Rcv:           simbind.NewPort(p, replyQs[i]),
				A:             actor,
				M:             p.M,
				UseHandoff:    cfg.Handoff,
				HandoffTarget: serverProc.ID(),
			}
			ans := cl.Send(core.Msg{Op: core.OpConnect})
			if ans.Op != core.OpConnect {
				rec.noteErr("client%d: bad connect reply op %d", i, ans.Op)
			}
			p.Barrier(barrier)
			rec.noteStart(p.Now())
			for j := 0; j < cfg.Msgs; j++ {
				if cfg.ClientThink > 0 {
					p.Step(cfg.ClientThink)
				}
				ans := cl.Send(core.Msg{Op: op, Seq: int32(j), Val: float64(j)})
				if ans.Seq != int32(j) || ans.Val != float64(j) {
					rec.noteErr("client%d: reply mismatch at %d: %+v", i, j, ans)
				}
			}
			cl.Send(core.Msg{Op: core.OpDisconnect})
		})
	}

	if err := k.Run(); err != nil {
		return Result{}, err
	}
	label := fmt.Sprintf("%s/%s/%dc", cfg.Alg, cfg.Machine.Name, cfg.Clients)
	return buildResult(cfg, rec, ms, label)
}
