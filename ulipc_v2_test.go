package ulipc_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"ulipc"
)

// TestNewSystemTypedErrors pins the validation surface: configuration
// mistakes come back as errors.Is-matchable sentinels, not panics.
func TestNewSystemTypedErrors(t *testing.T) {
	cases := []struct {
		name string
		opts ulipc.Options
		want error
	}{
		{"zero clients", ulipc.Options{Alg: ulipc.BSW}, ulipc.ErrBadClients},
		{"negative clients", ulipc.Options{Alg: ulipc.BSW, Clients: -3}, ulipc.ErrBadClients},
		{"spsc receive queue", ulipc.Options{Alg: ulipc.BSW, Clients: 1, QueueKind: ulipc.QueueSPSC}, ulipc.ErrSPSCTopology},
		{"negative cap", ulipc.Options{Alg: ulipc.BSW, Clients: 1, QueueCap: -1}, ulipc.ErrBadOption},
		{"unknown algorithm", ulipc.Options{Alg: 99, Clients: 1}, ulipc.ErrBadOption},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ulipc.NewSystem(tc.opts); !errors.Is(err, tc.want) {
				t.Fatalf("NewSystem(%+v) = %v, want %v", tc.opts, err, tc.want)
			}
		})
	}
}

// TestFunctionalOptions checks the v2 option idiom (the pointer helper
// it replaced is gone — WithReplyKind is the sole path).
func TestFunctionalOptions(t *testing.T) {
	viaOption, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1},
		ulipc.WithReplyKind(ulipc.QueueRing))
	if err != nil {
		t.Fatal(err)
	}
	if k := viaOption.ReplyChannel(0).Kind(); k != ulipc.QueueRing {
		t.Fatalf("reply kind = %v, want %v", k, ulipc.QueueRing)
	}
	// Options that map plain fields compose with the struct; the
	// consolidated Tuning struct carries all three scalar knobs.
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 2},
		ulipc.WithTuning(ulipc.Tuning{MaxSpin: 7, SleepScale: time.Millisecond}),
		ulipc.WithAllocBatch(4))
	if err != nil {
		t.Fatal(err)
	}
	_ = sys
	// An option carrying an invalid value still goes through validation.
	if _, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1},
		ulipc.WithAllocBatch(-1)); !errors.Is(err, ulipc.ErrBadOption) {
		t.Fatalf("invalid option value = %v, want ErrBadOption", err)
	}
}

// TestPublicAPIv2Lifecycle is the documented v2 quick start, end to
// end: ServeCtx + SendCtx, then a graceful Shutdown after which sends
// fail fast with ErrShutdown.
func TestPublicAPIv2Lifecycle(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSLS, Clients: 1},
		ulipc.WithTuning(ulipc.Tuning{SleepScale: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.ServeCtx(context.Background(), nil)
		serverDone <- err
	}()

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpConnect}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		ans, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho, Seq: int32(i), Val: float64(i)})
		if err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
		if ans.Val != float64(i) {
			t.Fatalf("echo %d: %+v", i, ans)
		}
	}
	if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpDisconnect}); err != nil {
		t.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}

	shutCtx, shutCancel := context.WithTimeout(context.Background(), time.Second)
	defer shutCancel()
	if err := sys.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The handle completed a disconnect handshake, so it reports the
	// misuse sentinel; a fresh handle observes the shut-down system.
	if _, err := cl.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho}); !errors.Is(err, ulipc.ErrDisconnected) {
		t.Fatalf("send on disconnected handle = %v, want ErrDisconnected", err)
	}
	fresh, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.SendCtx(ctx, ulipc.Msg{Op: ulipc.OpEcho}); !errors.Is(err, ulipc.ErrShutdown) {
		t.Fatalf("send after shutdown = %v, want ErrShutdown", err)
	}
}

// TestPublicAPIShutdownUnblocksLegacySend covers the v1 interop rule:
// an error-less Send unblocked by Shutdown returns the OpShutdown
// marker message.
func TestPublicAPIShutdownUnblocksLegacySend(t *testing.T) {
	sys, err := ulipc.NewSystem(ulipc.Options{Alg: ulipc.BSW, Clients: 1},
		ulipc.WithTuning(ulipc.Tuning{SleepScale: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan ulipc.Msg, 1)
	go func() {
		// No server: this parks waiting for a reply until Shutdown.
		done <- cl.Send(ulipc.Msg{Op: ulipc.OpEcho})
	}()
	time.Sleep(10 * time.Millisecond)
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer shutCancel()
	_ = sys.Shutdown(shutCtx) // returns DeadlineExceeded: the request never drains
	select {
	case m := <-done:
		if m.Op != ulipc.OpShutdown {
			t.Fatalf("unblocked Send returned %+v, want OpShutdown marker", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("legacy Send still parked after Shutdown")
	}
}
