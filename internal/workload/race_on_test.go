//go:build race

package workload

// raceEnabled: see race_test.go.
const raceEnabled = true
