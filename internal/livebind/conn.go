package livebind

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"ulipc/internal/core"
)

// Dynamic connection management. The shared segment pre-allocates
// Options.Clients reply queues (exactly as the paper's server allocates
// a reply queue per client); Connect claims a free slot at runtime,
// performs the connect handshake, and Close releases the slot for reuse
// — so a long-running server serves an arbitrary sequence of short-lived
// clients with a bounded segment.

// Conn is a live client connection with lifecycle management.
type Conn struct {
	cl     *core.Client
	sys    *System
	slot   int
	closed bool
	mu     sync.Mutex
}

// connPool tracks free client slots; it lives on System.
type connPool struct {
	mu   sync.Mutex
	free []int
	init bool
}

func (s *System) slots() *connPool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if !s.conns.init {
		s.conns.init = true
		for i := len(s.replies) - 1; i >= 0; i-- {
			s.conns.free = append(s.conns.free, i)
		}
	}
	return &s.conns
}

func (s *System) claimSlot() (int, error) {
	pool := s.slots()
	pool.mu.Lock()
	defer pool.mu.Unlock()
	if len(pool.free) == 0 {
		return 0, fmt.Errorf("%w: all %d slots taken", ErrNoFreeSlots, len(s.replies))
	}
	slot := pool.free[len(pool.free)-1]
	pool.free = pool.free[:len(pool.free)-1]
	return slot, nil
}

func (s *System) releaseSlot(slot int) {
	pool := s.slots()
	pool.mu.Lock()
	pool.free = append(pool.free, slot)
	pool.mu.Unlock()
}

// Connect claims a free client slot, sends the connect handshake, and
// returns the connection. It fails with ErrNoFreeSlots when every slot
// is in use (the shared segment is a fixed-size resource, like the
// paper's mapped regions).
func (s *System) Connect() (*Conn, error) {
	slot, err := s.claimSlot()
	if err != nil {
		return nil, err
	}
	cl, err := s.Client(slot)
	if err != nil {
		s.releaseSlot(slot)
		return nil, err
	}
	if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
		DrainPort(cl.Srv)
		s.releaseSlot(slot)
		if ans.Op == core.OpShutdown {
			return nil, core.ErrShutdown
		}
		return nil, fmt.Errorf("livebind: bad connect reply %+v", ans)
	}
	return &Conn{cl: cl, sys: s, slot: slot}, nil
}

// ConnectCtx is Connect with a deadline/cancellation on the connect
// handshake. A slot whose handshake was cancelled mid-flight (the
// request is enqueued but the reply is still owed) is NOT returned to
// the free list: a fresh client handle on that slot would misattribute
// the stale connect reply. The slot is reclaimed only when the system
// shuts down.
func (s *System) ConnectCtx(ctx context.Context) (*Conn, error) {
	slot, err := s.claimSlot()
	if err != nil {
		return nil, err
	}
	cl, err := s.Client(slot)
	if err != nil {
		s.releaseSlot(slot)
		return nil, err
	}
	ans, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect})
	if err != nil {
		DrainPort(cl.Srv)
		if cl.Lag() == 0 || errors.Is(err, core.ErrShutdown) {
			s.releaseSlot(slot)
		}
		return nil, err
	}
	if ans.Op != core.OpConnect {
		DrainPort(cl.Srv)
		s.releaseSlot(slot)
		return nil, fmt.Errorf("livebind: bad connect reply %+v", ans)
	}
	return &Conn{cl: cl, sys: s, slot: slot}, nil
}

// Send issues a synchronous request on the connection.
func (c *Conn) Send(m core.Msg) (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, core.ErrDisconnected
	}
	return c.cl.Send(m), nil
}

// SendCtx issues a synchronous request honouring the context's
// deadline/cancellation (see core.Client.SendCtx for the error
// contract).
func (c *Conn) SendCtx(ctx context.Context, m core.Msg) (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, core.ErrDisconnected
	}
	return c.cl.SendCtx(ctx, m)
}

// SendAsync issues an asynchronous request; collect replies with
// RecvReply.
func (c *Conn) SendAsync(m core.Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.ErrDisconnected
	}
	c.cl.SendAsync(m)
	return nil
}

// SendAsyncCtx is SendAsync with deadline/cancellation support.
func (c *Conn) SendAsyncCtx(ctx context.Context, m core.Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.ErrDisconnected
	}
	return c.cl.SendAsyncCtx(ctx, m)
}

// RecvReply collects one reply for a previous SendAsync.
func (c *Conn) RecvReply() (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, core.ErrDisconnected
	}
	return c.cl.RecvReply(), nil
}

// RecvReplyCtx collects one reply for a previous SendAsyncCtx.
func (c *Conn) RecvReplyCtx(ctx context.Context) (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, core.ErrDisconnected
	}
	return c.cl.RecvReplyCtx(ctx)
}

// Slot returns the reply-channel number this connection occupies.
func (c *Conn) Slot() int { return c.slot }

// Close sends the disconnect handshake and releases the slot for reuse.
// Close is idempotent.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.cl.Send(core.Msg{Op: core.OpDisconnect})
	// Spill any refs the connection's producer port cached from the
	// receive-queue pool: the slot outlives this connection, and parked
	// refs would otherwise leak from the pool's flow control.
	DrainPort(c.cl.Srv)
	c.sys.releaseSlot(c.slot)
	return nil
}

// CloseCtx is Close with a deadline/cancellation on the disconnect
// handshake. On ErrShutdown the slot is released anyway (the whole
// system is torn down, so no handshake is owed); on a context error the
// connection stays open — the disconnect reply is still owed, so the
// caller may retry CloseCtx (or fall back to Close).
func (c *Conn) CloseCtx(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	if _, err := c.cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil && !errors.Is(err, core.ErrShutdown) {
		return err
	}
	c.closed = true
	DrainPort(c.cl.Srv)
	c.sys.releaseSlot(c.slot)
	return nil
}
