package machine

// Preset models for the paper's four evaluation platforms. The SGI numbers
// come directly from Table 1; where the paper does not report a primitive
// cost (the IBM column is partially unreadable in our source, and the paper
// gives no Table 1 for the Challenge or the 486), costs are estimated so
// that the single-client anchors of the corresponding figures are matched;
// see EXPERIMENTS.md for the calibration notes.

// SGIIndy models the 133 MHz MIPS R4000 SGI Indy running IRIX 6.2
// (Figures 2a, 3a, 6a, 8a, 10a). Table 1: enqueue/dequeue pair 3us,
// msgsnd/msgrcv pair 37us, concurrent yields 16/18/45us for 1/2/4
// processes.
func SGIIndy() *Model {
	return &Model{
		Name: "SGI-Indy-IRIX6.2",
		CPUs: 1,

		EnqueueCost: 1500, // pair = 3us
		DequeueCost: 1500,
		EmptyCost:   400,
		TASCost:     300,
		StoreCost:   100,
		LockHold:    500,

		YieldCost:   16 * Microsecond,
		SemPCost:    17 * Microsecond, // SysV semaphores: "similar weight" to msg ops
		SemVCost:    16 * Microsecond,
		MsgSndCost:  18 * Microsecond, // pair = 37us
		MsgRcvCost:  19 * Microsecond,
		BlockCost:   24 * Microsecond, // kernel sleep path incl. run-queue work
		WakeupCost:  28 * Microsecond, // kernel wakeup path incl. priority recompute
		HandoffCost: 17 * Microsecond,

		CtxSwitchBase:    2 * Microsecond,  // 18us two-process yield trip = 16 + 2
		CtxSwitchPerProc: 13 * Microsecond, // 45us four-process trip ~= 16 + 2 + 2*13
		CtxSwitchMax:     40 * Microsecond,

		Quantum:      20 * Millisecond,
		UsageQuantum: 29 * Microsecond, // ~2.5 yields (16us each) to drop one level
		DecayPerUs:   0.35,
		SleepFloor:   Second,

		SpinPollCost: 25 * Microsecond,
		BusyWaitSpin: false, // uniprocessor: busy_wait is yield()
	}
}

// IBMP4 models the 133 MHz PowerPC 604 IBM P4 running AIX 4.1
// (Figures 2b, 3b, 6b, 8b, 10b). The paper's Table 1 IBM column is
// unreadable in our source; costs are estimated from the figure anchors:
// 1-client BSS throughput ~32 msg/ms (31us RTT) and a BSS/SYSV ratio of
// ~1.8.
func IBMP4() *Model {
	return &Model{
		Name: "IBM-P4-AIX4.1",
		CPUs: 1,

		EnqueueCost: 1000, // pair = 2us (604 has faster ll/sc path)
		DequeueCost: 1000,
		EmptyCost:   300,
		TASCost:     250,
		StoreCost:   80,
		LockHold:    400,

		YieldCost:   8 * Microsecond,
		SemPCost:    12 * Microsecond,
		SemVCost:    11 * Microsecond,
		MsgSndCost:  11 * Microsecond,
		MsgRcvCost:  12 * Microsecond,
		BlockCost:   2 * Microsecond,
		WakeupCost:  2500,
		HandoffCost: 11 * Microsecond,

		CtxSwitchBase:    2 * Microsecond,
		CtxSwitchPerProc: 9 * Microsecond,
		CtxSwitchMax:     30 * Microsecond,

		Quantum:      10 * Millisecond,
		UsageQuantum: 6 * Microsecond, // AIX degrades fast: a single yield tips one level,
		DecayPerUs:   0.06,            // but recovery is slow -> the server stays penalised
		//                                under load and clients spin, giving the rolloff
		SleepFloor: Second,

		SpinPollCost: 25 * Microsecond,
		BusyWaitSpin: false,
	}
}

// SGIChallenge8 models the 8-processor SGI Challenge used for Figure 11.
// Per-op costs follow the Indy (same generation MIPS parts); poll_queue is
// a 25us busy-wait loop per Section 5.
func SGIChallenge8() *Model {
	m := SGIIndy()
	m.Name = "SGI-Challenge-8P"
	m.CPUs = 8
	m.BusyWaitSpin = true
	// Shared-bus cache-coherence traffic makes queue operations on hotly
	// shared lines considerably more expensive than on the Indy.
	m.EnqueueCost = 5 * Microsecond
	m.DequeueCost = 5 * Microsecond
	m.LockHold = 2 * Microsecond
	return m
}

// Linux486 models the 66 MHz 486 running Linux 1.0.32 (Figure 12 and the
// Section 6 discussion). The paper reports a 120us BSS round trip once
// sched_yield is fixed to expire the caller's quantum.
func Linux486() *Model {
	return &Model{
		Name: "Linux-486-1.0.32",
		CPUs: 1,

		EnqueueCost: 3 * Microsecond,
		DequeueCost: 3 * Microsecond,
		EmptyCost:   800,
		TASCost:     700,
		StoreCost:   250,
		LockHold:    1000,

		YieldCost:   45 * Microsecond, // slow 486 syscall path; gives the 120us BSS RTT
		SemPCost:    24 * Microsecond,
		SemVCost:    22 * Microsecond,
		MsgSndCost:  30 * Microsecond,
		MsgRcvCost:  32 * Microsecond,
		BlockCost:   6 * Microsecond,
		WakeupCost:  7 * Microsecond,
		HandoffCost: 45 * Microsecond, // same kernel path weight as the fixed yield

		CtxSwitchBase:    7 * Microsecond,
		CtxSwitchPerProc: 10 * Microsecond,
		CtxSwitchMax:     45 * Microsecond,

		Quantum:      33 * Millisecond, // the 33ms BSS "latency" of the unmodified kernel
		UsageQuantum: 60 * Microsecond,
		DecayPerUs:   0.30,
		SleepFloor:   Second,

		SpinPollCost: 25 * Microsecond,
		BusyWaitSpin: false,
	}
}

// ByName returns a preset model by its short name. Recognised names:
// "sgi", "ibm", "challenge", "linux".
func ByName(name string) (*Model, bool) {
	switch name {
	case "sgi", "indy", "irix":
		return SGIIndy(), true
	case "ibm", "p4", "aix":
		return IBMP4(), true
	case "challenge", "mp", "challenge8":
		return SGIChallenge8(), true
	case "linux", "486":
		return Linux486(), true
	}
	return nil, false
}

// Presets returns all preset models in evaluation order.
func Presets() []*Model {
	return []*Model{SGIIndy(), IBMP4(), SGIChallenge8(), Linux486()}
}
