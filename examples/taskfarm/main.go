// taskfarm: asynchronous IPC as a task queue — the parallel-application
// use the paper's introduction motivates ("IPC is also integral to
// parallel applications that must co-ordinate worker activities (eg.
// using barrier operations or task queues)") and the asynchronous mode
// whose batching advantage the async experiment quantifies.
//
// A master farms numeric-integration slices to a worker (the server)
// in asynchronous batches, then collects the partial results. Because
// the sends are asynchronous, the worker drains whole batches per
// activation without any kernel involvement between requests.
package main

import (
	"fmt"
	"log"
	"math"

	"ulipc"
)

func main() {
	const (
		slices = 4096 // integration slices farmed out
		batch  = 32   // async sends in flight per batch
	)

	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg:     ulipc.BSW, // pure blocking: the batching does the work
		Clients: 1,
		// A batch must fit in the shared queue.
		QueueCap: batch * 2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Worker: integrate f(x) = 4/(1+x^2) over the slice [Val, Val+w] —
	// summing the replies approximates pi.
	width := 1.0 / float64(slices)
	srv := sys.Server()
	go srv.Serve(func(m *ulipc.Msg) {
		x := m.Val + width/2
		m.Val = 4.0 / (1.0 + x*x) * width
	})

	master, err := sys.Client(0)
	if err != nil {
		log.Fatal(err)
	}
	master.Send(ulipc.Msg{Op: ulipc.OpConnect})

	sum := 0.0
	seq := int32(0)
	for issued := 0; issued < slices; {
		n := batch
		if slices-issued < n {
			n = slices - issued
		}
		// Enqueue the whole batch without waiting: one wake-up suffices
		// if the worker is sleeping, zero if it is already draining.
		for i := 0; i < n; i++ {
			master.SendAsync(ulipc.Msg{Op: ulipc.OpWork, Seq: seq, Val: float64(issued+i) * width})
			seq++
		}
		for i := 0; i < n; i++ {
			sum += master.RecvReply().Val
		}
		issued += n
	}
	master.Send(ulipc.Msg{Op: ulipc.OpDisconnect})

	fmt.Printf("taskfarm: %d slices in batches of %d -> pi ~= %.9f (error %.2e)\n",
		slices, batch, sum, math.Abs(sum-math.Pi))
	if math.Abs(sum-math.Pi) > 1e-6 {
		log.Fatal("taskfarm: integration error out of tolerance")
	}
}
