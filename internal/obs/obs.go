package obs

import (
	"sync"
	"time"
)

// Phase names the four measured segments of a round trip. RTT is the
// whole client-side exchange; QueueWait is producer time lost to a full
// queue (retry/backoff); Spin is the BSLS limited-spin prefix (and any
// bounded poll before blocking); Sleep is time actually parked on the
// consumer semaphore. For a BSLS run, Spin vs. Sleep is exactly the
// paper's fall-through question: a fall-through round trip shows up in
// both, a successful spin only in Spin.
type Phase int

// The measured phases, in presentation order.
const (
	PhaseRTT Phase = iota
	PhaseQueueWait
	PhaseSpin
	PhaseSleep
	NumPhases
)

// String returns the snake_case phase name used in exports.
func (p Phase) String() string {
	switch p {
	case PhaseRTT:
		return "rtt"
	case PhaseQueueWait:
		return "queue_wait"
	case PhaseSpin:
		return "spin"
	case PhaseSleep:
		return "sleep"
	}
	return "unknown"
}

// ProtoHists is the per-protocol histogram block: one Histogram per
// phase, plus the batch-size distribution of the vectored
// SendBatch/ReceiveBatch paths. All fields are lock-free; the zero
// value is ready for use.
type ProtoHists struct {
	RTT       Histogram
	QueueWait Histogram
	Spin      Histogram
	Sleep     Histogram

	// Batch records message counts, not durations: one observation per
	// vectored operation, valued at the number of messages it moved.
	// Mean = sum/count is the achieved amortisation factor (messages
	// per wake-up on the batched paths). It is deliberately not a
	// Phase — phases are time, this is cardinality.
	Batch Histogram

	// Payload records payload sizes in bytes, one observation per
	// payload-carrying send. Like Batch it reuses the histogram's time
	// axis as a plain magnitude axis; mean = sum/count is the average
	// transferred payload size.
	Payload Histogram
}

// Phase returns the histogram for a phase (nil-safe).
func (p *ProtoHists) Phase(ph Phase) *Histogram {
	if p == nil {
		return nil
	}
	switch ph {
	case PhaseRTT:
		return &p.RTT
	case PhaseQueueWait:
		return &p.QueueWait
	case PhaseSpin:
		return &p.Spin
	case PhaseSleep:
		return &p.Sleep
	}
	return nil
}

// ProtoSnapshot is a point-in-time copy of one protocol's histograms.
type ProtoSnapshot struct {
	Proto     string       `json:"proto"`
	RTT       HistSnapshot `json:"rtt"`
	QueueWait HistSnapshot `json:"queue_wait"`
	Spin      HistSnapshot `json:"spin"`
	Sleep     HistSnapshot `json:"sleep"`
	Batch     HistSnapshot `json:"batch"`
	Payload   HistSnapshot `json:"payload"`
}

// Phase returns the snapshot for a phase.
func (p *ProtoSnapshot) PhaseSnap(ph Phase) *HistSnapshot {
	switch ph {
	case PhaseRTT:
		return &p.RTT
	case PhaseQueueWait:
		return &p.QueueWait
	case PhaseSpin:
		return &p.Spin
	case PhaseSleep:
		return &p.Sleep
	}
	return nil
}

// Snapshot copies the histogram block.
func (p *ProtoHists) Snapshot(name string) ProtoSnapshot {
	return ProtoSnapshot{
		Proto:     name,
		RTT:       p.RTT.Snapshot(),
		QueueWait: p.QueueWait.Snapshot(),
		Spin:      p.Spin.Snapshot(),
		Sleep:     p.Sleep.Snapshot(),
		Batch:     p.Batch.Snapshot(),
		Payload:   p.Payload.Snapshot(),
	}
}

// Config configures an Observer.
type Config struct {
	// Protos names the protocol histogram sets, indexed by the protocol
	// id the runtime passes to Observer.Proto (the live runtime passes
	// core.Algorithm values and names them BSS/BSW/BSWY/BSLS). Empty
	// defaults to those four names.
	Protos []string

	// RecorderCap, when positive, attaches a flight recorder holding
	// the most recent RecorderCap events (rounded up to a power of
	// two). Zero disables the recorder; histograms still work.
	RecorderCap int
}

// Observer is the root observability handle: per-protocol phase
// histograms plus an optional flight recorder. One Observer is meant to
// watch one System (or one benchmark cell); snapshots from several
// observers merge via HistSnapshot.Merge.
type Observer struct {
	names  []string
	protos []*ProtoHists
	rec    *FlightRecorder

	mu     sync.Mutex
	actors []string // registered actor names, indexed by id
}

// DefaultProtoNames is the protocol naming the live runtime uses.
var DefaultProtoNames = []string{"BSS", "BSW", "BSWY", "BSLS"}

// New builds an Observer.
func New(cfg Config) *Observer {
	names := cfg.Protos
	if len(names) == 0 {
		names = DefaultProtoNames
	}
	o := &Observer{names: append([]string(nil), names...)}
	o.protos = make([]*ProtoHists, len(o.names))
	for i := range o.protos {
		o.protos[i] = &ProtoHists{}
	}
	if cfg.RecorderCap > 0 {
		o.rec = NewFlightRecorder(cfg.RecorderCap)
	}
	return o
}

// Proto returns the histogram block for protocol id i (nil-safe,
// bounds-safe: out-of-range ids observe into nothing).
func (o *Observer) Proto(i int) *ProtoHists {
	if o == nil || i < 0 || i >= len(o.protos) {
		return nil
	}
	return o.protos[i]
}

// Recorder returns the flight recorder, or nil if disabled.
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// RegisterActor names a participant (client0, server, ...) and returns
// its id for flight-recorder attribution.
func (o *Observer) RegisterActor(name string) int32 {
	if o == nil {
		return -1
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.actors = append(o.actors, name)
	return int32(len(o.actors) - 1)
}

// ActorName resolves a registered actor id (unknown ids print as "?").
func (o *Observer) ActorName(id int32) string {
	if o == nil {
		return "?"
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id < 0 || int(id) >= len(o.actors) {
		return "?"
	}
	return o.actors[id]
}

// Hook builds the per-handle observation context for protocol id proto
// and a registered actor. A Hook built from a nil Observer is the
// disabled zero Hook.
func (o *Observer) Hook(proto int, actor int32) Hook {
	if o == nil {
		return Hook{}
	}
	return Hook{H: o.Proto(proto), R: o.rec, ID: actor}
}

// Snapshot copies every protocol's histograms.
func (o *Observer) Snapshot() []ProtoSnapshot {
	if o == nil {
		return nil
	}
	out := make([]ProtoSnapshot, len(o.protos))
	for i, p := range o.protos {
		out[i] = p.Snapshot(o.names[i])
	}
	return out
}

// ProtoNames returns the configured protocol names.
func (o *Observer) ProtoNames() []string {
	if o == nil {
		return nil
	}
	return append([]string(nil), o.names...)
}

// Hook is the per-handle observability context the protocol code
// carries: which protocol's histograms to record into, the flight
// recorder to note events on, and the actor id for attribution. The
// zero Hook is disabled — every method then reduces to a nil-check, so
// handles built without an Observer pay nothing on the hot path.
type Hook struct {
	H  *ProtoHists
	R  *FlightRecorder
	ID int32
}

// Enabled reports whether any observation is attached.
func (h Hook) Enabled() bool { return h.H != nil || h.R != nil }

// RTT records a whole round-trip duration.
func (h Hook) RTT(d time.Duration) {
	if h.H != nil {
		h.H.RTT.Record(d)
	}
}

// QueueWait records producer time lost to a full queue.
func (h Hook) QueueWait(d time.Duration) {
	if h.H != nil {
		h.H.QueueWait.Record(d)
	}
}

// Spin records a limited-spin (poll) phase duration.
func (h Hook) Spin(d time.Duration) {
	if h.H != nil {
		h.H.Spin.Record(d)
	}
}

// Sleep records a blocked (parked on semaphore) phase duration.
func (h Hook) Sleep(d time.Duration) {
	if h.H != nil {
		h.H.Sleep.Record(d)
	}
}

// Batch records the size of one vectored operation (k messages moved
// per wake-up). The histogram's time axis is reused as a plain count
// axis: an observation of k is recorded as k "nanoseconds".
func (h Hook) Batch(k int) {
	if h.H != nil {
		h.H.Batch.Record(time.Duration(k))
	}
}

// Payload records the size in bytes of one transferred payload.
func (h Hook) Payload(n int) {
	if h.H != nil {
		h.H.Payload.Record(time.Duration(n))
	}
}

// Note records a flight-recorder event attributed to the hook's actor.
func (h Hook) Note(k EventKind, arg int64) {
	if h.R != nil {
		h.R.Note(k, h.ID, arg)
	}
}
