//go:build !linux || nofutex

package livebind

import (
	"sync/atomic"
	"time"
)

// Polling fallback for platforms without futexes (and for the nofutex
// build tag, which CI uses to keep this path honest on Linux too). The
// semantics match futex_linux.go from the caller's point of view: wait
// returns when the word changes, on timeout, or spuriously; wake is a
// no-op because waiters notice the word change themselves. Latency is
// bounded by the poll interval instead of a syscall round-trip — worse,
// but portable and still correct, since ProcSem's loop re-checks its
// condition after every return.

// FutexBackend names the wake primitive this binary was built with.
const FutexBackend = "poll"

// pollInterval is the emulated-futex poll period. Short enough that a
// wake is seen promptly; long enough that a parked process burns ~no CPU.
const pollInterval = 200 * time.Microsecond

// futexWait polls addr until it differs from val or d elapses
// (d <= 0 means poll forever).
func futexWait(addr *atomic.Uint32, val uint32, d time.Duration) {
	var deadline time.Time
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	for addr.Load() == val {
		if d > 0 && !time.Now().Before(deadline) {
			return
		}
		time.Sleep(pollInterval)
	}
}

// futexWake is a no-op: pollers observe the word change directly.
func futexWake(addr *atomic.Uint32, n int) {}
