package queue

import (
	"runtime"
	"sync"
	"testing"

	"ulipc/internal/core"
)

func mustNewSPSC(t *testing.T, capacity int) *SPSC {
	t.Helper()
	q, err := NewSPSC(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestSPSCRejectedByGenericConstructor(t *testing.T) {
	if _, err := New(KindSPSC, 8); err == nil {
		t.Fatal("queue.New(KindSPSC) must fail: the generic constructor cannot prove the topology")
	}
}

func TestSPSCKindName(t *testing.T) {
	if got := KindSPSC.String(); got != "spsc" {
		t.Fatalf("KindSPSC.String() = %q, want spsc", got)
	}
	for _, name := range []string{"spsc", "lamport"} {
		k, err := KindByName(name)
		if err != nil || k != KindSPSC {
			t.Fatalf("KindByName(%q) = %v, %v; want KindSPSC", name, k, err)
		}
	}
	for _, k := range Kinds() {
		if k == KindSPSC {
			t.Fatal("Kinds() must list only the general-purpose (MPMC) kinds")
		}
	}
}

func TestSPSCFIFO(t *testing.T) {
	q := mustNewSPSC(t, 128)
	for i := 0; i < 100; i++ {
		if !q.Enqueue(core.Msg{Seq: int32(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	for i := 0; i < 100; i++ {
		m, ok := q.Dequeue()
		if !ok || m.Seq != int32(i) {
			t.Fatalf("dequeue %d: %+v, %v", i, m, ok)
		}
	}
	if _, ok := q.Dequeue(); ok {
		t.Fatal("dequeue on empty succeeded")
	}
}

func TestSPSCFullEmptyBoundary(t *testing.T) {
	q := mustNewSPSC(t, 3) // rounds up to 4
	if q.Cap() != 4 {
		t.Fatalf("Cap() = %d, want 4 (next power of two)", q.Cap())
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatal("fresh ring not empty")
	}
	for i := 0; i < q.Cap(); i++ {
		if !q.Enqueue(core.Msg{Seq: int32(i)}) {
			t.Fatalf("enqueue %d failed before capacity", i)
		}
	}
	if q.Enqueue(core.Msg{}) {
		t.Fatal("enqueue on full ring succeeded")
	}
	if q.Len() != q.Cap() {
		t.Fatalf("Len() = %d, want %d", q.Len(), q.Cap())
	}
	// One dequeue must re-open exactly one slot, preserving order —
	// this crosses the cached-index refresh on both sides.
	m, ok := q.Dequeue()
	if !ok || m.Seq != 0 {
		t.Fatalf("dequeue after full: %+v, %v", m, ok)
	}
	if !q.Enqueue(core.Msg{Seq: 99}) {
		t.Fatal("enqueue after one dequeue failed")
	}
	if q.Enqueue(core.Msg{}) {
		t.Fatal("ring should be full again")
	}
	want := []int32{1, 2, 3, 99}
	for i, w := range want {
		m, ok := q.Dequeue()
		if !ok || m.Seq != w {
			t.Fatalf("drain %d: got %+v, %v, want Seq %d", i, m, ok, w)
		}
	}
	if !q.Empty() {
		t.Fatal("drained ring not empty")
	}
}

// TestSPSCStress drives one producer against one consumer through a
// small ring (constant wrap-around and boundary traffic) and checks
// FIFO order and zero loss. Run under -race this also certifies the
// publication protocol: the slot write must happen-before the tail
// store that publishes it.
func TestSPSCStress(t *testing.T) {
	const total = 200_000
	q := mustNewSPSC(t, 8)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			for !q.Enqueue(core.Msg{Seq: int32(i % 1024), Val: float64(i)}) {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < total; i++ {
		var m core.Msg
		var ok bool
		for {
			if m, ok = q.Dequeue(); ok {
				break
			}
			runtime.Gosched()
		}
		if m.Val != float64(i) || m.Seq != int32(i%1024) {
			t.Fatalf("out of order at %d: %+v", i, m)
		}
	}
	wg.Wait()
	if !q.Empty() {
		t.Fatal("ring not empty after drain")
	}
}

// TestSPSCEmptyConcurrentPoll checks that Empty/Len may be polled from
// a third goroutine while the producer and consumer run — the BSLS spin
// loop does exactly this on reply rings. Under -race this verifies the
// poll touches only the atomic indices.
func TestSPSCEmptyConcurrentPoll(t *testing.T) {
	const total = 50_000
	q := mustNewSPSC(t, 16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = q.Empty()
			if n := q.Len(); n < 0 || n > q.Cap() {
				panic("Len out of range")
			}
			runtime.Gosched() // keep the poll cooperative on GOMAXPROCS=1
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			for !q.Enqueue(core.Msg{Val: float64(i)}) {
				runtime.Gosched()
			}
		}
	}()
	for i := 0; i < total; i++ {
		for {
			if m, ok := q.Dequeue(); ok {
				if m.Val != float64(i) {
					t.Fatalf("out of order at %d: %+v", i, m)
				}
				break
			}
			runtime.Gosched()
		}
	}
	close(stop)
	wg.Wait()
}
