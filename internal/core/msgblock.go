package core

import "math"

// Variable-sized messages (Section 2.1): a fixed-size message carries a
// reference to a variable-sized component in shared memory. The Val
// field's 64 bits hold the block reference and the payload length; the
// bits are never interpreted as a number, only round-tripped.

// SetBlock stores a shared-memory block reference and payload length in
// the message's Val field.
func (m *Msg) SetBlock(ref uint32, n int) {
	m.Val = math.Float64frombits(uint64(ref)<<32 | uint64(uint32(n)))
}

// Block extracts a shared-memory block reference and payload length
// stored by SetBlock.
func (m *Msg) Block() (ref uint32, n int) {
	bits := math.Float64bits(m.Val)
	return uint32(bits >> 32), int(uint32(bits))
}
