// Package machine defines cost models for the hardware/OS platforms the
// paper evaluates on. A Model carries only primitive-operation costs (the
// kind of numbers reported in the paper's Table 1) plus scheduler
// parameters; all figure-level behaviour must emerge from the interaction
// of the protocols with the simulated scheduler.
//
// All times are virtual nanoseconds (sim.Time).
package machine

import "fmt"

// Time is virtual time in nanoseconds. It mirrors sim.Time; machine is a
// leaf package so it declares its own alias to avoid an import cycle.
type Time = int64

// Convenient units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Model is the calibrated cost model for one platform.
type Model struct {
	Name string
	CPUs int

	// Shared-memory user-level primitive costs.
	EnqueueCost Time // one enqueue on the shared two-lock queue
	DequeueCost Time // one dequeue (including a failed attempt on empty)
	EmptyCost   Time // non-destructive empty check (BSLS poll)
	TASCost     Time // atomic test-and-set on the awake flag
	StoreCost   Time // plain store of the awake flag
	LockHold    Time // serialization window per queue op (MP contention)

	// System call costs (kernel entry+exit inclusive).
	YieldCost   Time // sched_yield, excluding any context switch
	SemPCost    Time // semaphore down, excluding blocking
	SemVCost    Time // semaphore up, excluding any wakeup dispatch
	MsgSndCost  Time // SYSV msgsnd, excluding blocking
	MsgRcvCost  Time // SYSV msgrcv, excluding blocking
	BlockCost   Time // extra kernel work to put a process to sleep
	WakeupCost  Time // extra kernel work to make a process runnable
	HandoffCost Time // proposed handoff(pid) syscall

	// Context switch cost. Grows with the number of ready processes to
	// model cache/TLB pollution (the paper's Table 1 shows concurrent
	// yield loop trips of 16/18/45us for 1/2/4 processes on the SGI).
	CtxSwitchBase    Time // switch cost with <=2 ready processes
	CtxSwitchPerProc Time // additional cost per ready process beyond 2
	CtxSwitchMax     Time // cap

	// Scheduler parameters.
	Quantum      Time    // scheduling quantum
	UsageQuantum Time    // CPU usage that degrades priority by one level
	DecayPerUs   float64 // usage decay per microsecond off-CPU
	SleepFloor   Time    // minimum sleep(1) duration (UNIX semantics: >= 1s)

	// Busy-wait behaviour.
	SpinPollCost Time // one poll_queue busy-wait iteration on an MP (25us in Sec. 5)
	BusyWaitSpin bool // true: busy_wait is a delay loop (MP); false: yield (uniprocessor)
}

// CtxSwitch returns the modelled context-switch cost when nReady processes
// are ready to run.
func (m *Model) CtxSwitch(nReady int) Time {
	c := m.CtxSwitchBase
	if nReady > 2 {
		c += Time(nReady-2) * m.CtxSwitchPerProc
	}
	if m.CtxSwitchMax > 0 && c > m.CtxSwitchMax {
		c = m.CtxSwitchMax
	}
	return c
}

// Validate reports configuration errors (zero or negative critical costs).
func (m *Model) Validate() error {
	if m.Name == "" {
		return fmt.Errorf("machine: empty name")
	}
	if m.CPUs < 1 {
		return fmt.Errorf("machine %s: CPUs must be >= 1, got %d", m.Name, m.CPUs)
	}
	type named struct {
		n string
		v Time
	}
	for _, f := range []named{
		{"EnqueueCost", m.EnqueueCost}, {"DequeueCost", m.DequeueCost},
		{"YieldCost", m.YieldCost}, {"SemPCost", m.SemPCost},
		{"SemVCost", m.SemVCost}, {"MsgSndCost", m.MsgSndCost},
		{"MsgRcvCost", m.MsgRcvCost}, {"Quantum", m.Quantum},
	} {
		if f.v <= 0 {
			return fmt.Errorf("machine %s: %s must be positive, got %d", m.Name, f.n, f.v)
		}
	}
	if m.DecayPerUs < 0 {
		return fmt.Errorf("machine %s: DecayPerUs must be >= 0", m.Name)
	}
	return nil
}

func (m *Model) String() string {
	return fmt.Sprintf("%s (%d CPU)", m.Name, m.CPUs)
}
