package livebind

import (
	"strings"
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/metrics"
	"ulipc/internal/obs"
)

// driveEcho runs one client against the system's server for msgs echo
// round trips, completing the full connect/disconnect protocol.
func driveEcho(t *testing.T, sys *System, msgs int) {
	t.Helper()
	srv := sys.Server()
	done := make(chan int64, 1)
	go func() { done <- srv.Serve(nil) }()
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
		t.Fatalf("bad connect reply %+v", ans)
	}
	for j := 0; j < msgs; j++ {
		ans := cl.Send(core.Msg{Op: core.OpEcho, Seq: int32(j), Val: float64(j)})
		if ans.Seq != int32(j) {
			t.Fatalf("reply mismatch at %d: %+v", j, ans)
		}
	}
	cl.Send(core.Msg{Op: core.OpDisconnect})
	DrainPort(cl.Srv)
	if served := <-done; served != int64(msgs) {
		t.Fatalf("served %d, want %d", served, msgs)
	}
	for _, p := range srv.Replies {
		DrainPort(p)
	}
}

// TestObservedSystemFillsHistograms drives a BSW system (every wait
// blocks, so the sleep phase must appear) and checks the full
// observability surface: histograms, counters, MetricsV2, Prometheus
// text, and the flight recorder.
func TestObservedSystemFillsHistograms(t *testing.T) {
	const msgs = 50
	ms := metrics.NewSet()
	ob := obs.New(obs.Config{RecorderCap: 256})
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms, Observer: ob})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Observer() != ob {
		t.Fatal("Observer() accessor lost the observer")
	}
	driveEcho(t, sys, msgs)

	snaps := ob.Snapshot()
	var bsw *obs.ProtoSnapshot
	for i := range snaps {
		if snaps[i].Proto == "BSW" {
			bsw = &snaps[i]
		} else if snaps[i].RTT.Count != 0 {
			t.Errorf("protocol %s has %d RTTs in a BSW-only run", snaps[i].Proto, snaps[i].RTT.Count)
		}
	}
	if bsw == nil {
		t.Fatal("no BSW snapshot")
	}
	// connect + echoes + disconnect, one RTT each.
	if want := uint64(msgs + 2); bsw.RTT.Count != want {
		t.Fatalf("RTT count = %d, want %d", bsw.RTT.Count, want)
	}
	if bsw.RTT.Max == 0 || bsw.RTT.Sum == 0 {
		t.Fatalf("RTT histogram empty: %+v", bsw.RTT)
	}
	// BSW blocks on every empty-queue wait; the sleep phase must have
	// observations and the Blocks counter must agree with them being real.
	if bsw.Sleep.Count == 0 {
		t.Fatal("BSW run recorded no sleep phases")
	}
	total := ms.Total()
	if total.Blocks == 0 {
		t.Fatal("Blocks counter stayed zero in a BSW run")
	}
	if total.Wakeups == 0 {
		t.Fatal("Wakeups counter stayed zero in a BSW run")
	}

	// MetricsV2 carries the same histograms alongside the counters.
	v2 := sys.MetricsV2()
	if len(v2.Protos) == 0 {
		t.Fatal("MetricsV2 snapshot has no protocol histograms")
	}
	if v2.Total.MsgsSent == 0 {
		t.Fatal("MetricsV2 total counters empty")
	}

	// Prometheus exposition: histogram series plus the counter families.
	var b strings.Builder
	sys.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		`ulipc_rtt_ns_count{proto="BSW"}`,
		`ulipc_sleep_ns_count{proto="BSW"}`,
		"ulipc_msgs_sent_total",
		"ulipc_blocks_total",
		"ulipc_wakeups_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	// Flight recorder saw the traffic; the dump resolves actor names.
	if ob.Recorder().Len() == 0 {
		t.Fatal("flight recorder empty")
	}
	b.Reset()
	sys.DumpFlightRecorder(&b)
	for _, want := range []string{"flight recorder:", "send", "client0"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("dump missing %q:\n%s", want, b.String())
		}
	}
}

// TestWithHistogramsOption exercises the WithHistograms functional
// option (histograms only, no recorder) on the spin-only protocol: BSS
// must never record a sleep phase.
func TestWithHistogramsOption(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSS, Clients: 1}, WithHistograms())
	if err != nil {
		t.Fatal(err)
	}
	ob := sys.Observer()
	if ob == nil {
		t.Fatal("WithHistograms attached no observer")
	}
	if ob.Recorder() != nil {
		t.Fatal("WithHistograms should not attach a flight recorder")
	}
	driveEcho(t, sys, 20)
	snaps := ob.Snapshot()
	for _, s := range snaps {
		if s.Proto == "BSS" {
			if s.RTT.Count != 22 {
				t.Fatalf("BSS RTT count = %d, want 22", s.RTT.Count)
			}
			if s.Sleep.Count != 0 {
				t.Fatalf("BSS recorded %d sleeps; both sides spin", s.Sleep.Count)
			}
		}
	}
	var b strings.Builder
	sys.DumpFlightRecorder(&b) // no recorder: silent no-op
	if b.Len() != 0 {
		t.Fatalf("dump without recorder wrote %q", b.String())
	}
}

// TestUnobservedSystemStaysBare: no observer means no histograms
// anywhere, while the counter surface still works.
func TestUnobservedSystemStaysBare(t *testing.T) {
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSLS, Clients: 1, Metrics: ms})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Observer() != nil {
		t.Fatal("unconfigured system has an observer")
	}
	driveEcho(t, sys, 20)
	v2 := sys.MetricsV2()
	if len(v2.Protos) != 0 {
		t.Fatalf("bare system snapshot carries histograms: %+v", v2.Protos)
	}
	if v2.Total.MsgsSent == 0 {
		t.Fatal("counters missing from bare snapshot")
	}
	var b strings.Builder
	sys.WritePrometheus(&b)
	if !strings.Contains(b.String(), "ulipc_msgs_sent_total") {
		t.Fatal("bare system prometheus output missing counters")
	}
	if strings.Contains(b.String(), "ulipc_rtt_ns") {
		t.Fatal("bare system prometheus output has histogram series")
	}
}

func TestPublishExpvarDuplicate(t *testing.T) {
	sys, err := NewSystem(Options{Alg: core.BSS, Clients: 1}, WithHistograms())
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.PublishExpvar("ulipc_test_dup"); err != nil {
		t.Fatalf("first publish: %v", err)
	}
	if err := sys.PublishExpvar("ulipc_test_dup"); err == nil {
		t.Fatal("duplicate publish did not error")
	}
}
