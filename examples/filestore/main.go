// filestore: variable-sized messages and the thread-per-client
// architecture together — a tiny content store whose values travel
// through shared-memory blocks while the fixed-size messages carry only
// references (Section 2.1: "variable sized messages can be accommodated
// by using one of the fields of the fixed sized message to point to a
// variable sized component in shared memory").
//
// Each client gets its own server thread over a full-duplex queue pair
// (the Section 2.1 alternative architecture), storing and reading back
// documents of varying sizes.
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"

	"ulipc"
)

const (
	opStore = ulipc.OpWork // Seq = document id; Ref = block ref+len
	opLoad  = ulipc.OpEcho // Seq = document id; reply Ref = block ref+len
)

func main() {
	const clients = 3
	const docsPerClient = 200

	sys, err := ulipc.NewSystem(ulipc.Options{
		Alg:        ulipc.BSLS,
		Clients:    clients,
		Duplex:     true, // thread-per-client architecture
		BlockSlots: 64,   // shared variable-size component store
	})
	if err != nil {
		log.Fatal(err)
	}
	pool := sys.Blocks()

	// The store itself: one map per connection handler (handlers own
	// disjoint id ranges, so no cross-handler sharing is needed).
	var wg sync.WaitGroup
	verified := 0
	var verifiedMu sync.Mutex

	for c := 0; c < clients; c++ {
		cl, handler, err := sys.DuplexPair(c)
		if err != nil {
			log.Fatal(err)
		}

		// Server thread for this connection: stores block refs by id and
		// hands them back on load.
		go func(h *ulipc.DuplexHandler) {
			// Block references travel in the dedicated integer Ref field
			// (they used to be bit-packed into Val's float64, which NaN
			// canonicalization could silently corrupt).
			docs := map[int32]uint64{}
			for {
				m := h.Receive()
				switch m.Op {
				case opStore:
					docs[m.Seq] = m.Ref // keep the packed block ref
					h.Reply(m)
				case opLoad:
					m.Ref = docs[m.Seq]
					h.Reply(m)
				case ulipc.OpDisconnect:
					h.Reply(m)
					return
				default:
					h.Reply(m)
				}
			}
		}(handler)

		wg.Add(1)
		go func(c int, cl *ulipc.DuplexClient) {
			defer wg.Done()
			base := int32(c * docsPerClient)
			// Store documents of varying sizes.
			for i := int32(0); i < docsPerClient; i++ {
				doc := strings.Repeat(fmt.Sprintf("doc-%d;", base+i), 1+int(i)%40)
				if len(doc) > pool.MaxBlock() {
					doc = doc[:pool.MaxBlock()]
				}
				ref, buf, ok := pool.Alloc(len(doc))
				if !ok {
					log.Fatalf("client %d: block pool exhausted", c)
				}
				copy(buf, doc)
				req := ulipc.Msg{Op: opStore, Seq: base + i}
				req.SetBlock(ref, len(doc))
				cl.Send(req)

				// Load it back and verify, then free the block.
				ans := cl.Send(ulipc.Msg{Op: opLoad, Seq: base + i})
				gotRef, n := ans.Block()
				got, err := pool.Get(gotRef)
				if err != nil {
					log.Fatalf("client %d: %v", c, err)
				}
				if string(got[:n]) != doc {
					log.Fatalf("client %d: doc %d corrupted", c, base+i)
				}
				pool.Free(gotRef)
				verifiedMu.Lock()
				verified++
				verifiedMu.Unlock()
			}
			cl.Send(ulipc.Msg{Op: ulipc.OpDisconnect})
		}(c, cl)
	}
	wg.Wait()
	fmt.Printf("filestore: %d clients x %d documents stored and verified (%d total), thread-per-client over duplex queues\n",
		clients, docsPerClient, verified)
}
