package workload

import (
	"testing"

	"ulipc/internal/core"
	"ulipc/internal/machine"
)

func run(t *testing.T, cfg Config) Result {
	t.Helper()
	if cfg.Machine == nil {
		cfg.Machine = machine.SGIIndy()
	}
	if cfg.Msgs == 0 {
		cfg.Msgs = 200
	}
	if cfg.Clients == 0 {
		cfg.Clients = 1
	}
	res, err := RunSim(cfg)
	if err != nil {
		t.Fatalf("RunSim(%+v): %v", cfg, err)
	}
	return res
}

func TestAllAlgorithmsCompleteOnAllMachines(t *testing.T) {
	for _, m := range machine.Presets() {
		for _, alg := range core.Algorithms() {
			for _, clients := range []int{1, 3} {
				cfg := Config{Machine: m, Alg: alg, Clients: clients, Msgs: 50}
				if m.CPUs == 1 && m.Name == "Linux-486-1.0.32" {
					cfg.Policy = "linuxmod"
				}
				res := run(t, cfg)
				if res.Throughput <= 0 {
					t.Errorf("%s/%s/%dc: throughput %.2f", m.Name, alg, clients, res.Throughput)
				}
			}
		}
	}
}

func TestSysVBaselineCompletes(t *testing.T) {
	for _, m := range []*machine.Model{machine.SGIIndy(), machine.IBMP4()} {
		res := run(t, Config{Machine: m, Transport: TransportSysV, Clients: 2, Msgs: 100})
		if res.Throughput <= 0 {
			t.Errorf("%s SYSV throughput %.2f", m.Name, res.Throughput)
		}
	}
}

func TestEchoValidationCatchesAllReplies(t *testing.T) {
	// The run helper fails the test if any reply mismatches; a passing
	// run with many clients demonstrates replies are routed to the right
	// reply queues.
	res := run(t, Config{Clients: 6, Msgs: 100, Alg: core.BSLS, MaxSpin: 10})
	if res.TotalMsgs != 600 {
		t.Fatalf("total msgs = %d, want 600", res.TotalMsgs)
	}
}

func TestMetricsArePopulated(t *testing.T) {
	res := run(t, Config{Clients: 2, Msgs: 100, Alg: core.BSW})
	if res.Server.MsgsReceived == 0 {
		t.Error("server received no messages in metrics")
	}
	if res.Clients.MsgsSent == 0 {
		t.Error("clients sent no messages in metrics")
	}
	if res.All.Syscalls == 0 {
		t.Error("no syscalls recorded")
	}
	// BSW should block and wake on both sides.
	if res.All.Blocks == 0 || res.All.Wakeups == 0 {
		t.Errorf("BSW blocks=%d wakeups=%d, want both > 0", res.All.Blocks, res.All.Wakeups)
	}
}

func TestDeterministicResults(t *testing.T) {
	cfg := Config{Clients: 3, Msgs: 150, Alg: core.BSWY, Machine: machine.SGIIndy()}
	a, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Throughput != b.Throughput || a.Duration != b.Duration {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestServerWorkReducesThroughput(t *testing.T) {
	base := run(t, Config{Clients: 2, Msgs: 100, Alg: core.BSS})
	loaded := run(t, Config{Clients: 2, Msgs: 100, Alg: core.BSS, ServerWork: 200 * machine.Microsecond})
	if loaded.Throughput >= base.Throughput {
		t.Errorf("server work did not reduce throughput: %.2f vs %.2f", loaded.Throughput, base.Throughput)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := RunSim(Config{}); err == nil {
		t.Error("nil machine accepted")
	}
	if _, err := RunSim(Config{Machine: machine.SGIIndy()}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := RunSim(Config{Machine: machine.SGIIndy(), Clients: 1}); err == nil {
		t.Error("zero msgs accepted")
	}
	if _, err := RunSim(Config{Machine: machine.SGIIndy(), Clients: 1, Msgs: 1, Policy: "nope"}); err == nil {
		t.Error("bad policy accepted")
	}
}
