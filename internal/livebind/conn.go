package livebind

import (
	"fmt"
	"sync"

	"ulipc/internal/core"
)

// Dynamic connection management. The shared segment pre-allocates
// Options.Clients reply queues (exactly as the paper's server allocates
// a reply queue per client); Connect claims a free slot at runtime,
// performs the connect handshake, and Close releases the slot for reuse
// — so a long-running server serves an arbitrary sequence of short-lived
// clients with a bounded segment.

// Conn is a live client connection with lifecycle management.
type Conn struct {
	cl     *core.Client
	sys    *System
	slot   int
	closed bool
	mu     sync.Mutex
}

// connPool tracks free client slots; it lives on System.
type connPool struct {
	mu   sync.Mutex
	free []int
	init bool
}

func (s *System) slots() *connPool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if !s.conns.init {
		s.conns.init = true
		for i := len(s.replies) - 1; i >= 0; i-- {
			s.conns.free = append(s.conns.free, i)
		}
	}
	return &s.conns
}

// Connect claims a free client slot, sends the connect handshake, and
// returns the connection. It fails when every slot is in use (the
// shared segment is a fixed-size resource, like the paper's mapped
// regions).
func (s *System) Connect() (*Conn, error) {
	pool := s.slots()
	pool.mu.Lock()
	if len(pool.free) == 0 {
		pool.mu.Unlock()
		return nil, fmt.Errorf("livebind: all %d client slots in use", len(s.replies))
	}
	slot := pool.free[len(pool.free)-1]
	pool.free = pool.free[:len(pool.free)-1]
	pool.mu.Unlock()

	cl, err := s.Client(slot)
	if err != nil {
		pool.mu.Lock()
		pool.free = append(pool.free, slot)
		pool.mu.Unlock()
		return nil, err
	}
	if ans := cl.Send(core.Msg{Op: core.OpConnect}); ans.Op != core.OpConnect {
		DrainPort(cl.Srv)
		pool.mu.Lock()
		pool.free = append(pool.free, slot)
		pool.mu.Unlock()
		return nil, fmt.Errorf("livebind: bad connect reply %+v", ans)
	}
	return &Conn{cl: cl, sys: s, slot: slot}, nil
}

// Send issues a synchronous request on the connection.
func (c *Conn) Send(m core.Msg) (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, fmt.Errorf("livebind: send on closed connection")
	}
	return c.cl.Send(m), nil
}

// SendAsync issues an asynchronous request; collect replies with
// RecvReply.
func (c *Conn) SendAsync(m core.Msg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("livebind: send on closed connection")
	}
	c.cl.SendAsync(m)
	return nil
}

// RecvReply collects one reply for a previous SendAsync.
func (c *Conn) RecvReply() (core.Msg, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return core.Msg{}, fmt.Errorf("livebind: recv on closed connection")
	}
	return c.cl.RecvReply(), nil
}

// Slot returns the reply-channel number this connection occupies.
func (c *Conn) Slot() int { return c.slot }

// Close sends the disconnect handshake and releases the slot for reuse.
// Close is idempotent.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.cl.Send(core.Msg{Op: core.OpDisconnect})
	// Spill any refs the connection's producer port cached from the
	// receive-queue pool: the slot outlives this connection, and parked
	// refs would otherwise leak from the pool's flow control.
	DrainPort(c.cl.Srv)
	pool := c.sys.slots()
	pool.mu.Lock()
	pool.free = append(pool.free, c.slot)
	pool.mu.Unlock()
	return nil
}
