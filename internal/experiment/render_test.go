package experiment

import (
	"strings"
	"testing"
)

// TestAllExperimentsProduceCompleteReports is the integration sweep: every
// registered experiment must run in quick mode and yield a well-formed
// report (tables with rows, records, and a renderable body).
func TestAllExperimentsProduceCompleteReports(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep, err := e.Run(Options{Quick: true, Msgs: 150})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if rep.ID != e.ID {
				t.Errorf("report id %q != experiment id %q", rep.ID, e.ID)
			}
			if len(rep.Tables) == 0 {
				t.Error("no tables")
			}
			for i, tbl := range rep.Tables {
				if len(tbl.Rows) == 0 {
					t.Errorf("table %d has no rows", i)
				}
			}
			if len(rep.Records) == 0 {
				t.Error("no records")
			}
			var sb strings.Builder
			rep.Render(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("render missing experiment id")
			}
			sb.Reset()
			rep.RenderRecords(&sb)
			if sb.Len() == 0 {
				t.Error("empty record rendering")
			}
		})
	}
}
