package workload

import (
	"testing"
	"time"

	"ulipc/internal/core"
)

// TestOpenLoopSmoke is the CI overload cell: an open-loop run far past
// this host's capacity must shed and fast-reject the excess (nonzero
// Sheds and Overloads), still deliver goodput, keep the admitted
// messages' p99 under the deadline, and conserve every payload lease
// (RunOpenLoop fails the run on a dirty post-run audit).
//
// The accounting identities and the lease audit hold on every run, but
// whether a given admitted message beats a 1ms deadline on a
// single-P host is scheduler luck: one long preemption gap expires the
// whole queue (correctly — shed-everything is the doctrine's answer to
// a stalled server). The schedule-dependent assertions therefore
// accumulate over a few seeds instead of gating a single interleaving.
func TestOpenLoopSmoke(t *testing.T) {
	const dl = time.Millisecond
	var sheds, rejects, good int64
	for attempt := 0; attempt < 4; attempt++ {
		res, err := RunOpenLoop(OpenLoopConfig{
			Alg:       core.BSLS,
			Clients:   2,
			Rate:      2_000_000, // far past any plausible single-CPU capacity
			Duration:  250 * time.Millisecond,
			Deadline:  dl,
			Seed:      7 + uint64(attempt),
			HighWater: 48,
			RetryCap:  32,
			PaySize:   64,
		})
		if err != nil {
			t.Fatalf("RunOpenLoop: %v", err)
		}
		t.Logf("offered=%d admitted=%d good=%d sheds=%d rejects=%d p99=%.0fns",
			res.Offered, res.Admitted, res.Good, res.All.Sheds, res.All.Overloads, res.P99Ns)
		// Per-run invariants: these hold on every interleaving.
		if res.Offered != res.Admitted+res.Rejected+res.AllocFails {
			t.Errorf("load-balance identity broken: offered %d != admitted %d + rejected %d + allocFails %d",
				res.Offered, res.Admitted, res.Rejected, res.AllocFails)
		}
		if res.Unanswered != res.All.Sheds {
			// Every admitted message is either collected or shed; a mismatch
			// means a reply was lost (or a shed double-counted).
			t.Errorf("unanswered %d != sheds %d", res.Unanswered, res.All.Sheds)
		}
		if lim := float64(dl.Nanoseconds()); res.P99Ns > lim {
			t.Errorf("goodput p99 %v ns exceeds the %v ns deadline", res.P99Ns, lim)
		}
		sheds += res.All.Sheds
		rejects += res.All.Overloads
		good += res.Good
		if sheds > 0 && rejects > 0 && (good > 0 || raceEnabled) {
			return
		}
	}
	if sheds == 0 {
		t.Errorf("expected sheds under overload, got 0 across all attempts")
	}
	if rejects == 0 {
		t.Errorf("expected admission rejects under overload, got 0 across all attempts")
	}
	// The race detector starves the server so thoroughly that zero
	// goodput is the expected steady state; the bare build must deliver
	// some within-deadline completions across the attempts.
	if good == 0 && !raceEnabled {
		t.Errorf("expected nonzero goodput under overload across all attempts")
	}
}

// TestOpenLoopUnderCapacity: below capacity nothing is shed or
// rejected, and (almost) everything offered becomes goodput.
func TestOpenLoopUnderCapacity(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopConfig{
		Alg:      core.BSW,
		Clients:  1,
		Rate:     5_000, // trivially sustainable
		Duration: 200 * time.Millisecond,
		Deadline: 20 * time.Millisecond,
		Seed:     3,
	})
	if err != nil {
		t.Fatalf("RunOpenLoop: %v", err)
	}
	if res.All.Sheds != 0 || res.Rejected != 0 {
		t.Errorf("under-capacity cell shed %d / rejected %d, want 0/0", res.All.Sheds, res.Rejected)
	}
	if res.Offered == 0 || res.Good != res.Admitted {
		t.Errorf("under-capacity cell: offered %d admitted %d good %d, want all admitted good",
			res.Offered, res.Admitted, res.Good)
	}
}

// TestOpenLoopBurst: the on/off arrival process still satisfies the
// accounting identities and generates a nonzero offered load.
func TestOpenLoopBurst(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopConfig{
		Alg:      core.BSA,
		Clients:  2,
		Rate:     50_000,
		Duration: 200 * time.Millisecond,
		Deadline: 10 * time.Millisecond,
		Burst:    true,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("RunOpenLoop: %v", err)
	}
	if res.Offered == 0 {
		t.Fatal("burst cell offered nothing")
	}
	if res.Offered != res.Admitted+res.Rejected+res.AllocFails {
		t.Errorf("load-balance identity broken: %+v", res)
	}
}

// TestOpenLoopGroupQuarantine drives a sharded system past high water
// with a sticky-pinned overload so the per-shard circuit opens at least
// once, and the cell still tears down cleanly.
func TestOpenLoopGroupQuarantine(t *testing.T) {
	res, err := RunOpenLoop(OpenLoopConfig{
		Alg:        core.BSLS,
		Clients:    4,
		Rate:       2_000_000,
		Duration:   250 * time.Millisecond,
		Deadline:   time.Millisecond,
		Seed:       5,
		HighWater:  16,
		RetryCap:   16,
		Quarantine: 4,
		Shards:     2,
	})
	if err != nil {
		t.Fatalf("RunOpenLoop: %v", err)
	}
	if res.All.Overloads == 0 {
		t.Errorf("expected admission rejects in the overloaded group, got 0")
	}
	if res.All.Quarantines == 0 {
		t.Errorf("expected at least one shard quarantine under sustained high water, got 0")
	}
}

// TestLatHist sanity-checks the log2 histogram's quantiles: the
// reported value must bracket the true quantile within one sub-bucket
// (~12% relative error, by construction).
func TestLatHist(t *testing.T) {
	var h latHist
	for i := int64(1); i <= 10_000; i++ {
		h.add(i)
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 5000}, {0.95, 9500}, {0.99, 9900}} {
		got := h.quantile(tc.q)
		if got < tc.want*0.85 || got > tc.want*1.15 {
			t.Errorf("quantile(%g) = %g, want within 15%% of %g", tc.q, got, tc.want)
		}
	}
	if h.max != 10_000 {
		t.Errorf("max = %d, want 10000", h.max)
	}
	var m latHist
	m.merge(&h)
	m.merge(&h)
	if m.count != 2*h.count || m.quantile(0.5) != h.quantile(0.5) {
		t.Errorf("merge changed the distribution: %g vs %g", m.quantile(0.5), h.quantile(0.5))
	}
	var empty latHist
	if empty.quantile(0.5) != 0 {
		t.Errorf("empty histogram quantile should be 0")
	}
}

// TestExpNs: the exponential sampler's mean must track 1/rate, and the
// stream must be deterministic for a fixed seed.
func TestExpNs(t *testing.T) {
	s1, s2 := uint64(42), uint64(42)
	var sum int64
	const n = 20_000
	perNs := 1.0 / 10_000 // mean gap 10µs
	for i := 0; i < n; i++ {
		d := expNs(&s1, perNs)
		if d < 1 {
			t.Fatalf("gap %d < 1", d)
		}
		sum += d
	}
	mean := float64(sum) / n
	if mean < 9_000 || mean > 11_000 {
		t.Errorf("mean gap %.0f ns, want ~10000", mean)
	}
	if a, b := expNs(&s2, perNs), expNs(&s2, perNs); a == b {
		t.Errorf("consecutive draws identical (%d): rng not advancing", a)
	}
}
