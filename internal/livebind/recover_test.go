package livebind

import (
	"context"
	"errors"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/fault"
	"ulipc/internal/metrics"
	"ulipc/internal/shm"
)

// TestKillActorDeliversErrPeerDead parks a client on a reply that will
// never come (the server handle exists but never runs), declares the
// server dead, and sweeps: the client must unblock with ErrPeerDead —
// not hang, and not plain ErrShutdown — and the orphaned request must
// drain back to the pool.
func TestKillActorDeliversErrPeerDead(t *testing.T) {
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms},
		WithRecovery(RecoveryOptions{SweepInterval: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server() // registered, never run
	serverID := srv.A.(*Actor).ID

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho})
		res <- err
	}()
	time.Sleep(20 * time.Millisecond) // request enqueued, client parked

	sys.KillActor(serverID)
	sys.SweepNow()

	select {
	case err := <-res:
		if !errors.Is(err, core.ErrPeerDead) {
			t.Fatalf("parked SendCtx after server death = %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still parked after peer-death sweep")
	}
	if !sys.ReplyChannel(0).PeerDead() {
		t.Fatal("reply channel not marked peer-dead")
	}
	total := ms.Total()
	if total.PeerDeaths != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", total.PeerDeaths)
	}
	if total.OrphanMsgs < 1 {
		t.Fatalf("OrphanMsgs = %d, want >= 1 (the undelivered request)", total.OrphanMsgs)
	}
	if err := sys.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

// TestLeaseExpiryDetectsSilentDeath registers a client that never makes
// another move and sweeps after its lease expires: the sweeper must
// declare it dead without any ReportCrash/KillActor, and subsequent
// sends on the dead topology must surface ErrPeerDead.
func TestLeaseExpiryDetectsSilentDeath(t *testing.T) {
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms},
		WithRecovery(RecoveryOptions{SweepInterval: time.Hour, Lease: 30 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(80 * time.Millisecond) // lease expires with no beats
	sys.SweepNow()

	if got := ms.Total().PeerDeaths; got != 1 {
		t.Fatalf("PeerDeaths = %d, want 1 (lease expiry)", got)
	}
	// The dead client was the only consumer of its reply channel and the
	// only producer of the receive queue: both sides are peer-dead now.
	if !sys.ReplyChannel(0).PeerDead() || !sys.ReceiveChannel().PeerDead() {
		t.Fatal("channels not marked peer-dead after lease expiry")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho}); !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("SendCtx on dead topology = %v, want ErrPeerDead", err)
	}
	if err := sys.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

// TestDroppedWakeupsRescued runs full round trips with EVERY wake-up V
// swallowed by the injector: only the sweeper's lost-wake rescue can
// unpark the two sides, so completion proves the rescue heuristic
// restores liveness end to end.
func TestDroppedWakeupsRescued(t *testing.T) {
	inj := fault.NewInjector(fault.Plan{Seed: 3, DropWake: 1.0})
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms},
		WithFaults(inj),
		WithRecovery(RecoveryOptions{SweepInterval: 100 * time.Microsecond}))
	if err != nil {
		t.Fatal(err)
	}
	srv := sys.Server()
	serverDone := make(chan error, 1)
	go func() {
		_, err := srv.ServeCtx(context.Background(), nil)
		serverDone <- err
	}()
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpConnect}); err != nil {
		t.Fatalf("connect: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho, Seq: int32(i)}); err != nil {
			t.Fatalf("echo %d: %v", i, err)
		}
	}
	if _, err := cl.SendCtx(ctx, core.Msg{Op: core.OpDisconnect}); err != nil {
		t.Fatalf("disconnect: %v", err)
	}
	if err := <-serverDone; err != nil {
		t.Fatalf("server: %v", err)
	}
	if drops := inj.Counts().WakeDrops; drops == 0 {
		t.Fatal("injector dropped no wake-ups; the test exercised nothing")
	}
	if rescues := ms.Total().WakeRescues; rescues == 0 {
		t.Fatal("round trips completed with all Vs dropped but no rescues recorded")
	}
	if err := sys.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

// TestServerCrashRecovery is the end-to-end robustness path: an
// injected crash kills the server inside the receive queue's locked
// dequeue section. The harness reports the crash, the sweeper revokes
// the dead holder's queue lock, reclaims the orphaned in-flight ref,
// and marks the reply side peer-dead so the parked client unblocks
// with ErrPeerDead instead of hanging forever.
func TestServerCrashRecovery(t *testing.T) {
	plan := fault.Plan{Seed: 42, MaxCrashes: 1}
	plan.Crash[fault.PtDequeueLocked] = 1.0
	inj := fault.NewInjector(plan)
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms},
		WithFaults(inj),
		WithRecovery(RecoveryOptions{SweepInterval: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}

	// The receive queue is the system's only two-lock queue (replies are
	// SPSC rings), so the armed dequeue crashpoint can only fire in the
	// server — deterministically, on its first dequeue.
	srv := sys.Server()
	crashed := make(chan struct{})
	go func() {
		defer func() {
			if v := recover(); v != nil {
				if !sys.ReportCrash(v) {
					panic(v) // not an injected fault: a real bug
				}
				close(crashed)
			}
		}()
		_, _ = srv.ServeCtx(context.Background(), nil)
	}()

	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho})
		res <- err
	}()

	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("server never hit the armed crashpoint")
	}
	sys.SweepNow()

	select {
	case err := <-res:
		if !errors.Is(err, core.ErrPeerDead) {
			t.Fatalf("client after server crash = %v, want ErrPeerDead", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client still parked after crash recovery sweep")
	}

	if got := inj.Counts().Crashes; got != 1 {
		t.Fatalf("injected crashes = %d, want 1", got)
	}
	total := ms.Total()
	if total.Crashes != 1 {
		t.Fatalf("metrics Crashes = %d, want 1", total.Crashes)
	}
	if total.PeerDeaths != 1 {
		t.Fatalf("PeerDeaths = %d, want 1", total.PeerDeaths)
	}
	if total.LockReclaims < 1 {
		t.Fatalf("LockReclaims = %d, want >= 1 (the held head lock)", total.LockReclaims)
	}
	// The crash fired before the head advanced, so the request is still
	// queued — and with its only consumer dead it drains as an orphan.
	if total.OrphanMsgs < 1 {
		t.Fatalf("OrphanMsgs = %d, want >= 1 (the undelivered request)", total.OrphanMsgs)
	}
	if err := sys.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}

// TestServerCrashReclaimsPendingRef arms the post-unlock crashpoint
// (node unlinked, not yet freed): the dead server holds no lock, but
// the dequeued dummy node would leak from the free pool without the
// sweeper's pending-ref reclaim.
func TestServerCrashReclaimsPendingRef(t *testing.T) {
	plan := fault.Plan{Seed: 7, MaxCrashes: 1}
	plan.Crash[fault.PtBeforeFree] = 1.0
	inj := fault.NewInjector(plan)
	ms := metrics.NewSet()
	sys, err := NewSystem(Options{Alg: core.BSW, Clients: 1, Metrics: ms},
		WithFaults(inj),
		WithRecovery(RecoveryOptions{SweepInterval: time.Hour}))
	if err != nil {
		t.Fatal(err)
	}
	recvPool := sys.ReceiveChannel().q.(interface{ Pool() *shm.Pool }).Pool()
	before := recvPool.FreeCount()

	srv := sys.Server()
	crashed := make(chan struct{})
	go func() {
		defer func() {
			if v := recover(); v != nil {
				if !sys.ReportCrash(v) {
					panic(v)
				}
				close(crashed)
			}
		}()
		_, _ = srv.ServeCtx(context.Background(), nil)
	}()
	cl, err := sys.Client(0)
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, err := cl.SendCtx(ctx, core.Msg{Op: core.OpEcho})
		res <- err
	}()
	select {
	case <-crashed:
	case <-time.After(5 * time.Second):
		t.Fatal("server never hit the armed crashpoint")
	}
	sys.SweepNow()
	if err := <-res; !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("client after server crash = %v, want ErrPeerDead", err)
	}
	total := ms.Total()
	if total.OrphanRefs != 1 {
		t.Fatalf("OrphanRefs = %d, want 1 (the unfreed dummy node)", total.OrphanRefs)
	}
	// No lock was held at the crash and the head had already advanced:
	// reclaiming the pending ref must restore the pool exactly.
	if after := recvPool.FreeCount(); after != before {
		t.Fatalf("pool free count %d after recovery, want %d (no leak)", after, before)
	}
	if err := sys.Shutdown(context.Background()); err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
}
