package workload

import (
	"errors"
	"os"
	"testing"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/shm"
)

// TestMain lets the test binary double as the proc-cell worker: when
// the parent re-executes it with ULIPC_PROC_ROLE set, MaybeProcWorker
// runs the role and exits before any test does.
func TestMain(m *testing.M) {
	MaybeProcWorker()
	os.Exit(m.Run())
}

func skipIfNoMmap(t *testing.T, err error) {
	t.Helper()
	if errors.Is(err, shm.ErrMapUnsupported) {
		t.Skip("no mapped-segment backend on this platform")
	}
}

// Two real OS processes' worth of clients echo through a memfd arena
// with futex wake-ups — the tentpole end to end.
func TestProcCellClean(t *testing.T) {
	for _, alg := range []core.Algorithm{core.BSW, core.BSA} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			res, err := RunProcCell(ProcConfig{
				Alg:     alg,
				Clients: 2,
				Msgs:    300,
			})
			skipIfNoMmap(t, err)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent != 600 || res.Served != 600 {
				t.Fatalf("sent %d served %d, want 600/600", res.Sent, res.Served)
			}
			if res.PoolLeaked != 0 {
				t.Fatalf("pool leaked %d refs", res.PoolLeaked)
			}
			if res.Backend == "" {
				t.Fatal("worker did not report its futex backend")
			}
			if res.RTTMicros <= 0 || res.Throughput <= 0 {
				t.Fatalf("degenerate timings: %+v", res)
			}
		})
	}
}

// Cross-process payloads: leased blocks in the shared slab arena ride
// the lanes both ways — zero-copy (lease transfer) and the copy
// baseline — and the cell must end leak-free with a bytes/s figure.
func TestProcCellPayload(t *testing.T) {
	for _, payCopy := range []bool{false, true} {
		name := "zerocopy"
		if payCopy {
			name = "copy"
		}
		t.Run(name, func(t *testing.T) {
			res, err := RunProcCell(ProcConfig{
				Alg:     core.BSW,
				Clients: 2,
				Msgs:    300,
				PaySize: 1024,
				PayCopy: payCopy,
			})
			skipIfNoMmap(t, err)
			if err != nil {
				t.Fatal(err)
			}
			if res.Sent != 600 || res.Served != 600 {
				t.Fatalf("sent %d served %d, want 600/600", res.Sent, res.Served)
			}
			if res.PoolLeaked != 0 || res.BlockLeaked != 0 {
				t.Fatalf("leaked %d refs, %d payload blocks", res.PoolLeaked, res.BlockLeaked)
			}
			if res.BytesPerSec <= 0 {
				t.Fatalf("no payload bandwidth recorded: %+v", res)
			}
			t.Logf("%s: %.1f MB/s, fails=%d refills=%d spills=%d",
				name, res.BytesPerSec/1e6, res.All.BlockFails, res.All.BlockRefills, res.All.BlockSpills)
		})
	}
}

// SIGKILL the server mid-traffic: every surviving client must surface
// ErrPeerDead promptly — no hang — and the post-mortem audit must make
// the pool whole.
func TestProcChaosKillServer(t *testing.T) {
	res, err := RunProcChaosKill(ProcConfig{
		Alg:             core.BSW,
		Clients:         2,
		Seed:            42,
		KillServerAfter: 80 * time.Millisecond,
		Watchdog:        20 * time.Second,
	})
	skipIfNoMmap(t, err)
	if err != nil {
		t.Fatalf("chaos cell: %v\nresult: %+v", err, res)
	}
	if res.Detected != 2 || res.Hung != 0 {
		t.Fatalf("detected %d hung %d, want 2/0", res.Detected, res.Hung)
	}
	if res.PoolLeaked != 0 {
		t.Fatalf("pool leaked %d refs after reclaim", res.PoolLeaked)
	}
	if res.DetectMsMax <= 0 {
		t.Fatalf("no detection latency recorded: %+v", res)
	}
	t.Logf("chaos: completed=%d detect_max=%.1fms orphan_msgs=%d orphan_refs=%d backend=%s",
		res.Completed, res.DetectMsMax, res.OrphanMsgs, res.OrphanRefs, res.Backend)
}

// SIGKILL mid-lease: the server dies while payload blocks are claimed
// by it or in flight to it. Survivors surface ErrPeerDead, and the
// post-mortem reclaim walks the lifetable owner tags — zero blocks may
// stay missing from the arena.
func TestProcChaosKillServerPayload(t *testing.T) {
	res, err := RunProcChaosKill(ProcConfig{
		Alg:             core.BSW,
		Clients:         2,
		Seed:            7,
		PaySize:         1024,
		KillServerAfter: 80 * time.Millisecond,
		Watchdog:        20 * time.Second,
	})
	skipIfNoMmap(t, err)
	if err != nil {
		t.Fatalf("chaos cell: %v\nresult: %+v", err, res)
	}
	if res.Detected != 2 || res.Hung != 0 {
		t.Fatalf("detected %d hung %d, want 2/0", res.Detected, res.Hung)
	}
	if res.PoolLeaked != 0 || res.BlockLeaked != 0 {
		t.Fatalf("leaked %d refs, %d payload blocks after reclaim", res.PoolLeaked, res.BlockLeaked)
	}
	t.Logf("payload chaos: completed=%d orphan_blocks=%d detect_max=%.1fms",
		res.Completed, res.OrphanBlocks, res.DetectMsMax)
}

// Worker-spawn plumbing failure paths stay typed and non-panicking.
func TestProcCellBadConfig(t *testing.T) {
	if _, err := RunProcCell(ProcConfig{Alg: core.BSW, Clients: 0}); err == nil {
		t.Fatal("zero-client cell accepted")
	}
	if _, err := RunProcChaosKill(ProcConfig{Alg: core.BSW, Clients: 0}); err == nil {
		t.Fatal("zero-client chaos cell accepted")
	}
}
