// Command ipcbench regenerates the paper's tables and figures from the
// discrete-event reproduction (and the live-runtime ablations), and
// measures the live runtime's wall-clock fast path.
//
// Usage:
//
//	ipcbench                    # run every experiment
//	ipcbench -exp fig2          # run one experiment
//	ipcbench -exp fig11 -msgs 5000
//	ipcbench -list              # list experiment ids
//	ipcbench -quick             # faster, lower-precision sweeps
//	ipcbench -records           # also dump the flat record map
//
// Live wall-clock mode (host timing, not the simulator):
//
//	ipcbench -live                        # text table on stdout
//	ipcbench -live -json                  # BENCH_live.json document on stdout
//	ipcbench -live -json -o BENCH_live.json
//	ipcbench -live -clients 1,4 -algs BSW,BSLS -batch 8
//	ipcbench -live -watchdog 30s          # per-cell deadline; exits non-zero
//	                                      # with partial results on deadlock
//	ipcbench -live -noobs                 # bare fast path, no histograms
//	ipcbench -live -flight 1024           # flight recorder; SIGQUIT or a
//	                                      # watchdog trip dumps it to stderr
//	ipcbench -live -ab 7                  # interleaved A/B observability
//	                                      # overhead measurement (7 pairs)
//	ipcbench -live -shards 2,4,8          # server-group scale-out sweep at
//	                                      # 16/64/256 clients, each preceded
//	                                      # by its single-server baseline
//	ipcbench -live -shards 4 -shardclients 64 -sendbatch 32
//	ipcbench -live -paysize 0,64,1024,4096  # zero-copy payload sweep: each
//	                                      # non-zero size runs a copy-mode
//	                                      # cell back to back with its
//	                                      # lease-transfer twin (bytes/s)
//
// Open-loop overload mode (offered rate decoupled from completions):
//
//	ipcbench -openloop                    # per protocol: closed-loop capacity
//	                                      # probe, then open-loop cells at
//	                                      # 0.5x/1x/2x the measured capacity
//	ipcbench -openloop -rate 0.5,1,2,4    # custom rate factors
//	ipcbench -openloop -burst             # add a bursty (on/off) twin per cell
//	ipcbench -openloop -json -o BENCH_openloop.json
//	ipcbench -openloop -highwater 48 -retrycap 32 -deadline 5ms
//
// Chaos mode (seeded fault injection + recovery, pass/fail not speed):
//
//	ipcbench -chaos                       # full protocol matrix, text summary
//	ipcbench -chaos -seed 42              # reproducible fault schedules
//	ipcbench -chaos -json -o BENCH_chaos.json
//	ipcbench -chaos -quick                # small matrix for CI smoke
//	ipcbench -chaos -shards 2,4           # shard-kill cell sizes (default 2)
//	ipcbench -chaos -paysize 1024         # leak-audited payload cells: the
//	                                      # lease-conservation audit fails
//	                                      # the cell if any arena block is
//	                                      # missing after crash recovery
//
// A chaos cell fails on deadlock, pool leak, or validation mismatch;
// any failed cell makes the process exit non-zero after the full
// report is written.
//
// Cross-process mode (real OS processes over a memfd arena + futexes):
//
//	ipcbench -proc                        # in-process vs cross-process A/B
//	                                      # pairs (xproc-base / xproc cells)
//	ipcbench -proc -procclients 1,4,16
//	ipcbench -live -proc                  # full matrix plus the A/B pairs
//	ipcbench -proc -chaos -seed 42        # SIGKILL the server mid-traffic;
//	                                      # fails on a hung client, a missed
//	                                      # ErrPeerDead, or a leaked pool
//	ipcbench -live -flightout dump.txt    # watchdog flight dumps to a file
//	                                      # (CI uploads it as an artifact)
//
// ipcbench re-executes itself as the worker processes of -proc cells;
// the ULIPC_PROC_ROLE environment variable marks a worker invocation.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"ulipc/internal/core"
	"ulipc/internal/experiment"
	"ulipc/internal/shm"
	"ulipc/internal/workload"
)

func main() {
	// A -proc cell re-executes this binary as its server/client worker
	// processes; a worker invocation runs its role and exits here.
	workload.MaybeProcWorker()
	var (
		exp     = flag.String("exp", "", "experiment id to run (default: all)")
		msgs    = flag.Int("msgs", 0, "requests per client (0 = experiment default)")
		quick   = flag.Bool("quick", false, "faster, lower-precision sweeps")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		records = flag.Bool("records", false, "also print the machine-readable record map")
		format  = flag.String("format", "text", "output format: text (tables + ASCII plots) or md (Markdown tables)")

		live     = flag.Bool("live", false, "run the live wall-clock benchmark matrix instead of the simulator experiments")
		jsonOut  = flag.Bool("json", false, "with -live: emit the BENCH_live.json document instead of a text table")
		outFile  = flag.String("o", "", "with -live: write the output to this file instead of stdout")
		clients  = flag.String("clients", "", "with -live: comma-separated client counts (default 1,4,16)")
		algs     = flag.String("algs", "", "with -live: comma-separated protocols (default BSS,BSW,BSWY,BSLS,BSA)")
		batch    = flag.Int("batch", 0, "with -live: producer alloc-batch size (two-lock queues; 0 disables)")
		liveSpin = flag.Int("spin", 0, "with -live: busy-wait spin iterations (0 = yield flavour)")
		watchdog = flag.Duration("watchdog", 2*time.Minute, "with -live: per-cell deadline on the context-threaded paths; a deadlocked cell is recorded and the sweep continues (0 disables, restoring the legacy error-less fast path)")
		noObs    = flag.Bool("noobs", false, "with -live: disable the phase-latency histograms (bare legacy fast path; no quantile columns)")
		flight   = flag.Int("flight", 0, "with -live: attach a flight recorder of this many events per cell; dumped to stderr on a watchdog trip or SIGQUIT")
		abReps   = flag.Int("ab", 0, "with -live: instead of the matrix, run this many interleaved (observability off, on) pairs of one cell and report the median overhead delta")
		best     = flag.Int("best", 1, "with -live: run the matrix this many times and keep each cell's fastest sample (best-of-K; stabilises a committed baseline against run-to-run jitter)")

		shards       = flag.String("shards", "", "with -live: comma-separated shard counts for the server-group scale-out sweep (each cell also runs a shards=0 single-server baseline back to back for interleaved A/B); empty disables the sweep")
		shardClients = flag.String("shardclients", "", "with -live -shards: comma-separated client counts for the scale-out sweep (default 16,64,256)")
		sendBatch    = flag.Int("sendbatch", 0, "with -live -shards: messages per SendBatch/ReplyBatch burst in group cells (default 16)")

		openLoop   = flag.Bool("openloop", false, "run the open-loop overload sweep: per protocol, a closed-loop capacity probe then open-loop cells at -rate multiples of the measured capacity")
		rates      = flag.String("rate", "", "with -openloop: comma-separated offered-rate factors as multiples of measured capacity (default 0.5,1,2)")
		burst      = flag.Bool("burst", false, "with -openloop: run a bursty (on/off) twin after each Poisson cell")
		olDeadline = flag.Duration("deadline", 0, "with -openloop: per-message deadline (default 5ms)")
		hwMark     = flag.Int("highwater", 0, "with -openloop: admission high-water mark on the request queue (default 48)")
		retryCap   = flag.Float64("retrycap", 0, "with -openloop: client retry-budget capacity (default 32)")
		olDur      = flag.Duration("duration", 0, "with -openloop: arrival window per open-loop cell (default 300ms)")

		chaos = flag.Bool("chaos", false, "run the seeded chaos matrix (fault injection + recovery) instead of the simulator experiments")
		seed  = flag.Int64("seed", 1, "with -chaos: base seed for the fault schedules (cell i uses seed+i)")

		paySizes = flag.String("paysize", "", "with -live: comma-separated payload sizes in bytes for the zero-copy sweep (e.g. 0,64,1024,4096; 0 is the legacy header-only reference, each non-zero size runs an interleaved copy vs zero-copy pair; combined with -proc the pairs also run cross-process); with -chaos: payload sizes for the leak-audited crash cells")

		proc        = flag.Bool("proc", false, "cross-process cells over a memfd arena: alone, run the in-process vs cross-process A/B pairs; with -live, append them to the matrix; with -chaos, SIGKILL the server mid-traffic instead of the in-process fault matrix")
		procClients = flag.String("procclients", "", "with -proc: comma-separated client counts for the cross-process cells (default 1,4)")
		flightOut   = flag.String("flightout", "", "with -live: write watchdog flight-recorder dumps to this file instead of stderr (enables a 4096-event recorder if -flight is unset); CI uploads it as an artifact")
	)
	flag.Parse()

	if *openLoop {
		if err := runOpenLoopSweep(*jsonOut, *outFile, *msgs, *quick, *clients, *algs, *rates, *burst, *hwMark, *retryCap, *olDeadline, *olDur, uint64(*seed), *liveSpin, *watchdog); err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *chaos {
		var err error
		if *proc {
			err = runProcChaos(*jsonOut, *outFile, *procClients, *algs, *paySizes, *seed, *watchdog)
		} else {
			err = runChaos(*jsonOut, *outFile, *msgs, *quick, *clients, *algs, *shards, *paySizes, *seed, *watchdog)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *live || *proc {
		if *abReps > 0 {
			if err := runLiveAB(*abReps, *jsonOut, *msgs, *clients, *algs, *liveSpin, *watchdog); err != nil {
				fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
				os.Exit(1)
			}
			return
		}
		if err := runLive(*jsonOut, *outFile, *msgs, *quick, *clients, *algs, *shards, *shardClients, *procClients, *paySizes, *flightOut, *sendBatch, *batch, *liveSpin, *watchdog, *noObs, *flight, *best, *proc, !*live); err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, e := range experiment.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiment.Options{Msgs: *msgs, Quick: *quick}
	var toRun []experiment.Experiment
	if *exp == "" {
		toRun = experiment.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := experiment.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "ipcbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		rep, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ipcbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if *format == "md" {
			rep.RenderMarkdown(os.Stdout)
		} else {
			rep.Render(os.Stdout)
		}
		if *records {
			rep.RenderRecords(os.Stdout)
			fmt.Println()
		}
	}
}

// runLive executes the wall-clock benchmark matrix (workload.RunLiveBench).
// With a watchdog, a deadlocked or failing cell does not hang or abort
// the sweep: its partial numbers and Error land in the report, the
// remaining cells still run, and the non-nil error return makes the
// process exit non-zero after the (partial) report has been written.
func runLive(jsonOut bool, outFile string, msgs int, quick bool, clients, algs, shards, shardClients, procClients, paySizes, flightOut string, sendBatch, batch, spin int, watchdog time.Duration, noObs bool, flight, best int, proc, procOnly bool) error {
	opts := workload.LiveBenchOptions{Msgs: msgs, AllocBatch: batch, SpinIters: spin, Watchdog: watchdog, NoObs: noObs, RecorderCap: flight, Batch: sendBatch}
	if flight > 0 {
		opts.DumpTo = os.Stderr
	}
	if flightOut != "" {
		f, err := os.Create(flightOut)
		if err != nil {
			return err
		}
		defer f.Close()
		opts.DumpTo = f
		if opts.RecorderCap <= 0 {
			opts.RecorderCap = 4096
		}
	}
	if quick && msgs == 0 {
		opts.Msgs = 200
	}
	var err error
	if opts.Clients, err = parseClients(clients); err != nil {
		return err
	}
	if opts.Algs, err = parseAlgs(algs); err != nil {
		return err
	}
	if opts.Shards, err = parseClients(shards); err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	if opts.ShardClients, err = parseClients(shardClients); err != nil {
		return fmt.Errorf("-shardclients: %w", err)
	}
	if opts.PaySizes, err = parseSizes(paySizes); err != nil {
		return fmt.Errorf("-paysize: %w", err)
	}
	if quick && len(opts.Shards) > 0 && shardClients == "" {
		opts.ShardClients = []int{16} // keep the CI smoke to seconds
	}
	if proc {
		opts.ProcOnly = procOnly
		if opts.ProcClients, err = parseClients(procClients); err != nil {
			return fmt.Errorf("-procclients: %w", err)
		}
		if len(opts.ProcClients) == 0 {
			opts.ProcClients = []int{1, 4}
		}
		if quick && procClients == "" {
			opts.ProcClients = []int{2}
		}
	}
	out := os.Stdout
	if outFile != "" {
		// Open the destination before the (long) run so a bad path fails
		// in milliseconds, not after the full matrix.
		f, err := os.Create(outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	var rep *workload.LiveBenchReport
	if best <= 1 {
		rep, err = workload.RunLiveBench(opts, os.Stderr)
	} else {
		var reps []*workload.LiveBenchReport
		for i := 0; i < best; i++ {
			fmt.Fprintf(os.Stderr, "== best-of-%d: run %d ==\n", best, i+1)
			r, rerr := workload.RunLiveBench(opts, os.Stderr)
			if r != nil {
				reps = append(reps, r)
			}
			if rerr != nil && err == nil {
				err = rerr
			}
			if r == nil && rerr != nil {
				break // hard failure before any cell ran
			}
		}
		rep = workload.MergeBest(reps)
	}
	if rep != nil {
		if jsonOut {
			if werr := rep.WriteJSON(out); werr != nil && err == nil {
				err = werr
			}
		} else {
			rep.RenderText(out)
		}
	}
	return err
}

// runOpenLoopSweep executes the open-loop overload sweep
// (workload.RunOpenLoopBench): per protocol and rate factor, an
// interleaved closed-loop capacity probe ("openloop-base" entries,
// admission disabled) anchors the offered rate of the open-loop cell
// ("openloop" entries) that follows it. Failing cells are recorded and
// the sweep continues; any failure makes the exit non-zero after the
// report is written.
func runOpenLoopSweep(jsonOut bool, outFile string, msgs int, quick bool, clients, algs, rates string, burst bool, highWater int, retryCap float64, deadline, duration time.Duration, seed uint64, spin int, watchdog time.Duration) error {
	opts := workload.OpenLoopBenchOptions{
		Msgs:      msgs,
		Burst:     burst,
		HighWater: highWater,
		RetryCap:  retryCap,
		Deadline:  deadline,
		Duration:  duration,
		Seed:      seed,
		SpinIters: spin,
		Watchdog:  watchdog,
	}
	var err error
	if opts.Factors, err = parseFactors(rates); err != nil {
		return fmt.Errorf("-rate: %w", err)
	}
	if opts.Algs, err = parseAlgs(algs); err != nil {
		return err
	}
	cls, err := parseClients(clients)
	if err != nil {
		return err
	}
	if len(cls) > 0 {
		opts.Clients = cls[0]
	}
	if quick {
		// CI smoke: one protocol pair, short probes and windows.
		if opts.Msgs == 0 {
			opts.Msgs = 500
		}
		if opts.Duration == 0 {
			opts.Duration = 100 * time.Millisecond
		}
		if len(opts.Algs) == 0 {
			opts.Algs = []core.Algorithm{core.BSW, core.BSLS}
		}
	}
	out := os.Stdout
	if outFile != "" {
		f, ferr := os.Create(outFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	rep, err := workload.RunOpenLoopBench(opts, os.Stderr)
	if rep != nil {
		if jsonOut {
			if werr := rep.WriteJSON(out); werr != nil && err == nil {
				err = werr
			}
		} else {
			rep.RenderText(out)
		}
	}
	return err
}

// parseFactors parses a -rate list of offered-rate multipliers; any
// positive float is legal (0.5 = half capacity, 2 = overload).
func parseFactors(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate factor %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// runChaos executes the seeded chaos matrix (workload.RunChaosBench).
// Every cell runs regardless of earlier failures; the report (JSON or
// text) is written before the error return turns a failed cell into a
// non-zero exit — the contract CI's chaos gate relies on.
func runChaos(jsonOut bool, outFile string, msgs int, quick bool, clients, algs, shards, paySizes string, seed int64, watchdog time.Duration) error {
	opts := workload.ChaosOptions{Msgs: msgs, Seed: seed, Watchdog: watchdog}
	var err error
	if opts.Clients, err = parseClients(clients); err != nil {
		return err
	}
	if opts.Algs, err = parseAlgs(algs); err != nil {
		return err
	}
	if opts.Shards, err = parseClients(shards); err != nil {
		return fmt.Errorf("-shards: %w", err)
	}
	if opts.PaySizes, err = parseSizes(paySizes); err != nil {
		return fmt.Errorf("-paysize: %w", err)
	}
	if quick {
		// CI smoke: a protocol pair and small fan-in, seconds not minutes.
		if opts.Algs == nil {
			opts.Algs = []core.Algorithm{core.BSW, core.BSLS}
		}
		if opts.Clients == nil {
			opts.Clients = []int{2, 4}
		}
		if opts.Msgs == 0 {
			opts.Msgs = 50
		}
	}
	out := os.Stdout
	if outFile != "" {
		f, ferr := os.Create(outFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	rep, err := workload.RunChaosBench(opts, os.Stderr)
	if rep != nil {
		if jsonOut {
			if werr := rep.WriteJSON(out); werr != nil && err == nil {
				err = werr
			}
		} else {
			renderChaosText(out, rep)
		}
	}
	return err
}

// runProcChaos executes the cross-process SIGKILL cells: for each
// protocol and client count, server and client processes exchange
// traffic over a memfd segment until the parent SIGKILLs the server;
// every surviving client must unblock with ErrPeerDead and the
// post-mortem audit must make the pool whole. The full report is
// written before a failed cell turns into a non-zero exit.
func runProcChaos(jsonOut bool, outFile, clients, algs, paySizes string, seed int64, watchdog time.Duration) error {
	cls, err := parseClients(clients)
	if err != nil {
		return fmt.Errorf("-procclients: %w", err)
	}
	if len(cls) == 0 {
		cls = []int{2}
	}
	as, err := parseAlgs(algs)
	if err != nil {
		return err
	}
	if len(as) == 0 {
		as = []core.Algorithm{core.BSW, core.BSA}
	}
	// Each (alg, clients) cell runs once per payload size; size 0 is the
	// legacy header-only kill, a positive size the SIGKILL-mid-lease
	// variant whose audit must recover every leased arena block.
	sizes, err := parseSizes(paySizes)
	if err != nil {
		return fmt.Errorf("-paysize: %w", err)
	}
	if len(sizes) == 0 {
		sizes = []int{0}
	}
	out := os.Stdout
	if outFile != "" {
		f, ferr := os.Create(outFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		out = f
	}
	var results []workload.ProcChaosResult
	var failures []error
	i := int64(0)
	for _, alg := range as {
		for _, n := range cls {
			for _, size := range sizes {
				label := fmt.Sprintf("xproc-kill %-5s %3dc", alg, n)
				if size > 0 {
					label = fmt.Sprintf("%s p%-5d", label, size)
				}
				res, err := workload.RunProcChaosKill(workload.ProcConfig{
					Alg:      alg,
					Clients:  n,
					Seed:     seed + i,
					PaySize:  size,
					Watchdog: watchdog,
				})
				i++
				if errors.Is(err, shm.ErrMapUnsupported) {
					fmt.Fprintf(os.Stderr, "%s  skipped: no mapped-segment backend\n", label)
					continue
				}
				results = append(results, res)
				if err != nil {
					failures = append(failures, fmt.Errorf("xproc-kill %s/%dc/p%d: %w", alg, n, size, err))
					fmt.Fprintf(os.Stderr, "%s  FAILED: %v\n", label, err)
				} else {
					fmt.Fprintf(os.Stderr, "%s  completed=%d detected=%d detect_max=%.1fms rescues=%d orphans=%d blocks=%d\n",
						label, res.Completed, res.Detected, res.DetectMsMax, res.WakeRescues, res.OrphanMsgs+res.OrphanRefs, res.OrphanBlocks)
				}
			}
		}
	}
	if jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if werr := enc.Encode(results); werr != nil {
			failures = append(failures, werr)
		}
	} else {
		fmt.Fprintf(out, "cross-process SIGKILL chaos (base seed %d, backend varies per build)\n", seed)
		fmt.Fprintf(out, "%-20s %9s %9s %5s %11s %8s %8s %7s  %s\n",
			"cell", "completed", "detected", "hung", "detect(ms)", "rescues", "orphans", "leaked", "status")
		for _, r := range results {
			status := "ok"
			if r.Error != "" {
				status = "FAIL: " + r.Error
			}
			cell := fmt.Sprintf("xproc-kill/%s/%dc", r.Alg, r.Clients)
			if r.PaySize > 0 {
				cell += fmt.Sprintf("/p%d", r.PaySize)
			}
			fmt.Fprintf(out, "%-20s %9d %9d %5d %11.1f %8d %8d %7d  %s\n",
				cell, r.Completed, r.Detected, r.Hung,
				r.DetectMsMax, r.WakeRescues, r.OrphanMsgs+r.OrphanRefs+r.OrphanBlocks, r.PoolLeaked+r.BlockLeaked, status)
		}
	}
	return errors.Join(failures...)
}

func renderChaosText(out *os.File, rep *workload.ChaosReport) {
	fmt.Fprintf(out, "chaos matrix (base seed %d, %d msgs/client, %s, GOMAXPROCS=%d)\n",
		rep.BaseSeed, rep.MsgsPerCli, rep.GoVersion, rep.GOMAXPROCS)
	fmt.Fprintf(out, "%-24s %9s %8s %8s %7s %8s %8s %8s %7s  %s\n",
		"cell", "completed", "aborted", "crashes", "deaths", "reclaims", "orphans", "rescues", "leaked", "status")
	for _, c := range rep.Cells {
		status := "ok"
		if c.Error != "" {
			status = "FAIL: " + c.Error
		}
		fmt.Fprintf(out, "%-24s %9d %8d %8d %7d %8d %8d %8d %7d  %s\n",
			c.Label, c.Completed, c.Aborted, c.Crashes, c.PeerDeaths,
			c.LockReclaims, c.OrphanMsgs+c.OrphanRefs, c.WakeRescues, c.PoolLeaked, status)
	}
}

func parseClients(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -clients entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// parseSizes parses a -paysize list. Unlike -clients, zero is a legal
// entry: it names the legacy header-only reference cell.
func parseSizes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad size entry %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func parseAlgs(s string) ([]core.Algorithm, error) {
	if s == "" {
		return nil, nil
	}
	var out []core.Algorithm
	for _, f := range strings.Split(s, ",") {
		a, err := core.AlgorithmByName(strings.TrimSpace(f))
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// runLiveAB measures the observability hook overhead on one cell:
// reps interleaved pairs of the same workload with the hooks disabled
// and enabled, medians compared. The cell is the first -algs/-clients
// entry (default BSLS, 1 client) on the library-default queues.
func runLiveAB(reps int, jsonOut bool, msgs int, clients, algs string, spin int, watchdog time.Duration) error {
	cl, err := parseClients(clients)
	if err != nil {
		return err
	}
	as, err := parseAlgs(algs)
	if err != nil {
		return err
	}
	cfg := workload.LiveConfig{
		Alg:       core.BSLS,
		Clients:   1,
		Msgs:      msgs,
		SpinIters: spin,
		Watchdog:  watchdog,
	}
	if len(as) > 0 {
		cfg.Alg = as[0]
	}
	if len(cl) > 0 {
		cfg.Clients = cl[0]
	}
	if cfg.Msgs <= 0 {
		cfg.Msgs = 2000
	}
	res, err := workload.RunLiveOverheadAB(cfg, reps, os.Stderr)
	if err != nil {
		return err
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}
	fmt.Printf("A/B overhead %s/%dc over %d interleaved pairs:\n", cfg.Alg, cfg.Clients, res.Reps)
	fmt.Printf("  base (obs off) median %10.0f ns/rtt\n", res.BaseMedianNs)
	fmt.Printf("  obs  (obs on)  median %10.0f ns/rtt\n", res.ObsMedianNs)
	fmt.Printf("  delta %+.2f%%\n", res.DeltaPct)
	return nil
}
