package shm

import "sync"

// BlockCache is a private per-producer cache of payload blocks, the
// slab-arena analogue of PoolCache: one owner allocates through it, and
// the shared per-class Treiber heads are hit once per batch instead of
// once per block (AllocClassN/FreeClassN). The same light mutex makes
// Drain safe from the teardown path while staying uncontended in steady
// state.
//
// Blocks parked in the cache are FREE, not leased: Free clears the
// lease tag before parking, and Alloc re-tags on hand-out only via the
// caller's Lease. That keeps the sweeper's owner walk exact — a dead
// producer's parked blocks are returned by the cache spill (the sweeper
// drains the corpse's caches), while its genuinely-leased blocks are
// returned by ReclaimOwner; the two sets are disjoint, so nothing is
// freed twice.
type BlockCache struct {
	pool  *BlockPool
	batch int

	mu   sync.Mutex
	refs [][]BlockRef // per-class LIFO stashes; high end is the hot end

	// Refills and Spills count batched transfers from/to the pool,
	// written under mu; read them after the owner has quiesced.
	Refills int64
	Spills  int64
}

// NewBlockCache builds a cache drawing batches of batch blocks per
// class from the pool. A batch below 2 is clamped to 2.
func (p *BlockPool) NewBlockCache(batch int) *BlockCache {
	if batch < 2 {
		batch = 2
	}
	refs := make([][]BlockRef, len(p.classes))
	for i := range refs {
		refs[i] = make([]BlockRef, 0, 2*batch)
	}
	return &BlockCache{pool: p, batch: batch, refs: refs}
}

// Pool returns the backing pool (for Get/Lease/Claim pass-through).
func (c *BlockCache) Pool() *BlockPool { return c.pool }

// Batch returns the configured refill/spill batch size.
func (c *BlockCache) Batch() int { return c.batch }

// Len returns the number of blocks currently parked across classes.
func (c *BlockCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, rs := range c.refs {
		n += len(rs)
	}
	return n
}

// Alloc returns a block of at least n bytes, drawing from the per-class
// stash and refilling it with one batched pool operation when empty.
// Exhaustion falls through to larger classes with the same fallback /
// exhaustion accounting as BlockPool.Alloc. refilled reports that at
// least one batched refill happened (metrics hook).
func (c *BlockCache) Alloc(n int) (BlockRef, []byte, bool, bool) {
	first := c.pool.ClassFor(n)
	if first < 0 {
		return NilBlock, nil, false, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	refilled := false
	for ci := first; ci < len(c.pool.classes); ci++ {
		if len(c.refs[ci]) == 0 {
			got := c.pool.AllocClassN(ci, c.refs[ci][:c.batch])
			if got == 0 {
				c.pool.classes[ci].ctl.Exhausts.Add(1)
				continue
			}
			c.refs[ci] = c.refs[ci][:got]
			c.Refills++
			refilled = true
		}
		rs := c.refs[ci]
		r := rs[len(rs)-1]
		c.refs[ci] = rs[:len(rs)-1]
		if ci > first {
			c.pool.classes[ci].ctl.Fallbacks.Add(1)
		}
		buf, err := c.pool.Get(r)
		if err != nil {
			return NilBlock, nil, false, refilled
		}
		return r, buf, true, refilled
	}
	return NilBlock, nil, false, refilled
}

// Free parks a block in its class's stash (clearing the lease tag);
// when the stash reaches twice the batch size the cold half spills back
// to the pool in one batched operation. spilled reports a spill
// happened (metrics hook).
func (c *BlockCache) Free(r BlockRef) (spilled bool, err error) {
	ci, _ := unpackBlock(r)
	cls, slot, err := c.pool.class(r)
	if err != nil {
		return false, err
	}
	cls.own[slot].Store(0)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.refs[ci] = append(c.refs[ci], r)
	if len(c.refs[ci]) >= 2*c.batch {
		if err := c.pool.FreeClassN(c.refs[ci][c.batch:]); err != nil {
			return false, err
		}
		c.refs[ci] = c.refs[ci][:c.batch]
		c.Spills++
		return true, nil
	}
	return false, nil
}

// Drain returns every parked block to the pool (one batched operation
// per class) and reports how many were spilled. Owners call it when the
// producer retires — and the teardown/recovery paths call it on the
// owner's behalf; afterwards the cache is empty but remains usable.
func (c *BlockCache) Drain() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for ci := range c.refs {
		if len(c.refs[ci]) == 0 {
			continue
		}
		if err := c.pool.FreeClassN(c.refs[ci]); err == nil {
			n += len(c.refs[ci])
			c.refs[ci] = c.refs[ci][:0]
			c.Spills++
		}
	}
	return n
}
